//! Event queues and timer bookkeeping for the simulator hot loop.
//!
//! The discrete-event core orders every pending event by `(time, seq)` —
//! absolute microsecond first, global insertion sequence as the tie-break.
//! This module provides two interchangeable priority queues over that order:
//!
//! * [`TimerWheel`] — a hierarchical timer wheel (4 levels × 64 slots of
//!   1 µs ticks, so a 2²⁴ µs ≈ 16.8 s in-wheel horizon) backed by a
//!   slab-allocated event arena with intrusive bucket lists. Arm (push) and
//!   fire (pop) are O(1) amortized: no per-event heap allocation, no sift.
//!   Events beyond the horizon sit in a small overflow heap and are promoted
//!   as the wheel's cursor approaches them.
//! * [`HeapQueue`] — the reference `BinaryHeap` implementation the wheel
//!   replaced, kept behind the same API for equivalence property tests and
//!   before/after benchmarks (`BENCH_event_queue.json`).
//!
//! Determinism is the whole point: [`EventQueue::pop`] yields *exactly* the
//! global `(time, seq)` minimum on both implementations, byte for byte, so
//! swapping the scheduler cannot change a single simulation result. DESIGN.md
//! §12 carries the full argument; the invariants are restated inline below.
//!
//! [`TimerSlab`] replaces the old `armed: HashSet<TimerId>` timer set with
//! generation-stamped slab slots: arm/cancel/fire are array index + integer
//! compare, no hashing, and a recycled slot's bumped generation makes stale
//! handles (cancel after fire, double cancel) detectably dead.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// log₂ of the slots per wheel level.
pub const WHEEL_SLOT_BITS: u32 = 6;
/// Slots per level (64).
pub const WHEEL_SLOTS: usize = 1 << WHEEL_SLOT_BITS;
/// Number of hierarchical levels.
pub const WHEEL_LEVELS: usize = 4;
/// In-wheel horizon in ticks (µs): deltas at or beyond this go to the
/// overflow heap until the cursor gets close enough. 2²⁴ µs ≈ 16.8 s — far
/// past every in-sim RTO, cadence, and chaos window, so overflow traffic is
/// limited to genuinely far-future timers.
pub const WHEEL_HORIZON: u64 = 1 << (WHEEL_SLOT_BITS * WHEEL_LEVELS as u32);

/// Null index for the intrusive slot lists.
const NIL: u32 = u32::MAX;

/// Which event-queue implementation a simulator runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// The hierarchical timer wheel (production default).
    #[default]
    Wheel,
    /// The reference binary heap — kept for equivalence checks and the
    /// before/after numbers in `BENCH_event_queue.json`.
    Heap,
}

/// One arena slot: an event's timestamp/sequence plus an intrusive link.
/// Freed slots are chained through `next` on the arena's free list, so the
/// steady-state event loop recycles slots instead of allocating.
#[derive(Debug)]
struct EventSlot<T> {
    time: u64,
    seq: u64,
    next: u32,
    payload: Option<T>,
}

/// Hierarchical timer wheel over `(time, seq)`-ordered events.
///
/// Geometry: level `L` covers deltas in `[64^L, 64^(L+1))` ticks from the
/// cursor (level 0 holds the next 64 µs at exact-tick resolution); the slot
/// for time `t` at level `L` is `(t >> 6L) & 63`. Advancing works on
/// *boundaries*: the cursor either jumps straight to the earliest level-0
/// tick and expires it, or to the range start of the earliest occupied
/// higher-level bucket and cascades that bucket's entries down one or more
/// levels. Because an entry's bucket boundary is never later than the entry
/// itself, the cursor can never step over a pending event.
#[derive(Debug)]
pub struct TimerWheel<T> {
    arena: Vec<EventSlot<T>>,
    /// Head of the free-slot list threaded through `EventSlot::next`.
    free: u32,
    /// Intrusive list heads, `buckets[level][slot]`.
    buckets: [[u32; WHEEL_SLOTS]; WHEEL_LEVELS],
    /// Per-level occupancy bitmap — bit `s` set iff `buckets[level][s]` is
    /// non-empty. Finding the next occupied slot is a rotate + trailing_zeros.
    occupied: [u64; WHEEL_LEVELS],
    /// Events at `delta >= WHEEL_HORIZON` from the cursor, ordered by
    /// `(time, seq, slot)`. Promoted into the wheel as the cursor approaches.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// Events pushed with `time < cursor`. Settling for an exact
    /// [`peek_time`](Self::peek_time) advances the cursor to the next event
    /// time, which can be *ahead* of the simulator clock; the sharded
    /// engine's epoch exchange then legitimately injects events in the gap.
    /// Those land here and drain strictly before the wheel (every antedated
    /// time is < cursor ≤ every wheel/batch time), preserving exact global
    /// `(time, seq)` order. Empty in single-shard hot loops.
    antedated: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// Current wheel time. Only ever advances, and never past a pending
    /// wheel/overflow event.
    cursor: u64,
    /// The expired level-0 bucket currently being drained, in `seq` order.
    /// All entries share timestamp `batch_time` (== cursor): a level-0 slot
    /// holds exactly one tick.
    batch: VecDeque<(u64, T)>,
    batch_time: u64,
    /// Total pending events (antedated + batch + wheel + overflow).
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel with its cursor at tick 0.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            arena: Vec::new(),
            free: NIL,
            buckets: [[NIL; WHEEL_SLOTS]; WHEEL_LEVELS],
            occupied: [0; WHEEL_LEVELS],
            overflow: BinaryHeap::new(),
            antedated: BinaryHeap::new(),
            cursor: 0,
            batch: VecDeque::new(),
            batch_time: 0,
            len: 0,
        }
    }

    /// Pending event count, including tombstoned (cancelled-but-queued)
    /// timer events — the same accounting the reference heap's `len()` has,
    /// so `peak_queue` stays byte-identical across schedulers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no event is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `payload` at `(time, seq)`. `seq` must be strictly greater
    /// than every previously pushed `seq` (the simulator's global counter).
    pub fn push(&mut self, time: u64, seq: u64, payload: T) {
        self.len += 1;
        // Re-pushing at the tick currently being drained: `seq` is globally
        // monotone, so appending keeps the batch sorted.
        if time == self.batch_time && !self.batch.is_empty() {
            debug_assert!(time >= self.cursor || self.cursor == self.batch_time);
            self.batch.push_back((seq, payload));
            return;
        }
        if time < self.cursor {
            let idx = self.alloc(time, seq, payload);
            self.antedated.push(Reverse((time, seq, idx)));
            return;
        }
        let idx = self.alloc(time, seq, payload);
        self.place(idx, time, seq);
    }

    /// Earliest pending `(time, seq)` event's time, or `None` when empty.
    /// Takes `&mut self`: computing an *exact* minimum settles the wheel
    /// (advances the cursor to the next event, cascading buckets on the way).
    pub fn peek_time(&mut self) -> Option<u64> {
        if let Some(&Reverse((t, _, _))) = self.antedated.peek() {
            // Antedated entries are always earlier than anything in the
            // wheel (time < cursor ≤ wheel times), so no settle needed.
            return Some(t);
        }
        self.settle();
        if self.batch.is_empty() {
            None
        } else {
            Some(self.batch_time)
        }
    }

    /// Remove and return the globally earliest `(time, seq, payload)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if let Some(Reverse((t, s, idx))) = self.antedated.pop() {
            self.len -= 1;
            let payload = self.release(idx);
            return Some((t, s, payload));
        }
        self.settle();
        let (seq, payload) = self.batch.pop_front()?;
        self.len -= 1;
        Some((self.batch_time, seq, payload))
    }

    /// Take a slot off the free list (or grow the arena) for an event.
    fn alloc(&mut self, time: u64, seq: u64, payload: T) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let slot = &mut self.arena[idx as usize];
            self.free = slot.next;
            slot.time = time;
            slot.seq = seq;
            slot.next = NIL;
            debug_assert!(slot.payload.is_none());
            slot.payload = Some(payload);
            idx
        } else {
            let idx = u32::try_from(self.arena.len()).expect("event arena overflow");
            self.arena.push(EventSlot { time, seq, next: NIL, payload: Some(payload) });
            idx
        }
    }

    /// Return a slot's payload and put the slot back on the free list.
    fn release(&mut self, idx: u32) -> T {
        let slot = &mut self.arena[idx as usize];
        let payload = slot.payload.take().expect("releasing an empty event slot");
        slot.next = self.free;
        self.free = idx;
        payload
    }

    /// File slot `idx` (holding `(time, seq)`, with `time >= cursor`) into
    /// the wheel or the overflow heap.
    fn place(&mut self, idx: u32, time: u64, seq: u64) {
        debug_assert!(time >= self.cursor);
        let delta = time - self.cursor;
        if delta >= WHEEL_HORIZON {
            self.overflow.push(Reverse((time, seq, idx)));
            return;
        }
        let level = level_for(delta);
        let shift = WHEEL_SLOT_BITS * level as u32;
        let slot = ((time >> shift) & (WHEEL_SLOTS as u64 - 1)) as usize;
        self.arena[idx as usize].next = self.buckets[level][slot];
        self.buckets[level][slot] = idx;
        self.occupied[level] |= 1u64 << slot;
    }

    /// Advance the cursor until the earliest wheel/overflow event sits in the
    /// batch, cascading higher-level buckets down as their range starts come
    /// due. No-op while the current batch still has entries (their tick *is*
    /// the earliest time) or when the wheel is drained.
    fn settle(&mut self) {
        if !self.batch.is_empty() {
            return;
        }
        loop {
            // Level-0 candidate: the nearest occupied tick, distance 0..=63
            // from the cursor (distance 0 = events at the cursor itself).
            let t0 = if self.occupied[0] != 0 {
                let rot = self.occupied[0].rotate_right((self.cursor & 63) as u32);
                let t0 = self.cursor + u64::from(rot.trailing_zeros());
                // Fast path: an event inside the cursor's own level-1 window
                // beats every competitor without computing a single bound.
                // Higher-level boundaries are slot-span multiples strictly
                // above the cursor, so the nearest sits at the window edge;
                // overflow entries are ≥ `WHEEL_HORIZON - 63` ticks out (the
                // promotion sweep runs on every cursor hop, and `expire`
                // moves the cursor ≤ 63 ticks past the last sweep).
                if t0 < ((self.cursor >> WHEEL_SLOT_BITS) + 1) << WHEEL_SLOT_BITS {
                    return self.expire(t0);
                }
                Some(t0)
            } else {
                None
            };
            // Higher levels contribute the *range start* of their earliest
            // occupied bucket. Distance is 1..=64: the cursor's own slot at a
            // higher level can only hold next-revolution entries (its
            // current-revolution entries cascaded when the cursor reached the
            // bucket's range start — see the cascade rule below).
            let mut bounds = [None::<u64>; WHEEL_LEVELS];
            let mut nearest: Option<u64> = None;
            for (level, bound) in bounds.iter_mut().enumerate().skip(1) {
                if self.occupied[level] == 0 {
                    continue;
                }
                let shift = WHEEL_SLOT_BITS * level as u32;
                let pos = self.cursor >> shift;
                let rot = self.occupied[level].rotate_right((pos as u32 & 63) + 1);
                let dist = u64::from(rot.trailing_zeros()) + 1;
                let boundary = (pos + dist) << shift;
                *bound = Some(boundary);
                if nearest.is_none_or(|b| boundary < b) {
                    nearest = Some(boundary);
                }
            }
            if let Some(&Reverse((t, _, _))) = self.overflow.peek() {
                if nearest.is_none_or(|b| t < b) {
                    nearest = Some(t);
                }
            }
            let hb = match (t0, nearest) {
                (None, None) => return,
                (Some(t0), None) => return self.expire(t0),
                (Some(t0), Some(hb)) if t0 < hb => return self.expire(t0),
                (_, Some(hb)) => hb,
            };
            // One or more levels (and possibly the overflow heap) come due at
            // exactly `hb`. Every level whose boundary equals `hb` MUST
            // cascade in this same step: once the cursor sits on a bucket's
            // range start, the distance search above would misread that
            // bucket as next-revolution. Cascade lowest level first so
            // demoted entries land in buckets already emptied this step.
            self.cursor = hb;
            for (level, bound) in bounds.iter().enumerate().skip(1) {
                if *bound == Some(hb) {
                    self.cascade(level);
                }
            }
            // Promote overflow events that are now within the horizon.
            while let Some(&Reverse((t, _, _))) = self.overflow.peek() {
                if t - self.cursor >= WHEEL_HORIZON {
                    break;
                }
                let Reverse((t, s, idx)) = self.overflow.pop().expect("peeked");
                self.place(idx, t, s);
            }
        }
    }

    /// Expire the level-0 bucket at tick `t0` into the batch, sorted by seq.
    fn expire(&mut self, t0: u64) {
        self.cursor = t0;
        let slot = (t0 & 63) as usize;
        let mut idx = self.buckets[0][slot];
        self.buckets[0][slot] = NIL;
        self.occupied[0] &= !(1u64 << slot);
        debug_assert!(idx != NIL, "expired an empty level-0 bucket");
        debug_assert!(self.batch.is_empty());
        while idx != NIL {
            let next = self.arena[idx as usize].next;
            let seq = self.arena[idx as usize].seq;
            debug_assert_eq!(self.arena[idx as usize].time, t0);
            let payload = self.release(idx);
            self.batch.push_back((seq, payload));
            idx = next;
        }
        // Intrusive lists are LIFO; a level-0 bucket holds exactly one tick,
        // so sorting by seq alone restores global (time, seq) order.
        self.batch.make_contiguous().sort_unstable_by_key(|&(seq, _)| seq);
        self.batch_time = t0;
    }

    /// Demote the bucket whose range starts at the cursor from `level` into
    /// lower levels (or level-0 ticks).
    fn cascade(&mut self, level: usize) {
        let shift = WHEEL_SLOT_BITS * level as u32;
        let pos = self.cursor >> shift;
        let slot = (pos & 63) as usize;
        let mut idx = self.buckets[level][slot];
        self.buckets[level][slot] = NIL;
        self.occupied[level] &= !(1u64 << slot);
        while idx != NIL {
            let next = self.arena[idx as usize].next;
            let time = self.arena[idx as usize].time;
            let seq = self.arena[idx as usize].seq;
            debug_assert_eq!(time >> shift, pos, "cross-revolution entry in cascaded bucket");
            self.place(idx, time, seq);
            idx = next;
        }
    }
}

/// The reference scheduler: a `(time, seq)`-ordered binary heap. This is the
/// exact structure the simulator used before the wheel; it stays as the
/// equivalence oracle and the "before" side of `BENCH_event_queue.json`.
#[derive(Debug)]
pub struct HeapQueue<T> {
    heap: BinaryHeap<Reverse<HeapEntry<T>>>,
}

#[derive(Debug)]
struct HeapEntry<T> {
    time: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<T> Default for HeapQueue<T> {
    fn default() -> Self {
        HeapQueue::new()
    }
}

impl<T> HeapQueue<T> {
    /// An empty heap queue.
    pub fn new() -> HeapQueue<T> {
        HeapQueue { heap: BinaryHeap::new() }
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at `(time, seq)`.
    pub fn push(&mut self, time: u64, seq: u64, payload: T) {
        self.heap.push(Reverse(HeapEntry { time, seq, payload }));
    }

    /// Earliest pending event's time (`&mut self` only for API parity with
    /// the wheel, which settles on peek).
    pub fn peek_time(&mut self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Remove and return the earliest `(time, seq, payload)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.seq, e.payload))
    }
}

/// Scheduler dispatch: the simulator owns one of these and every event-loop
/// operation forwards to the selected implementation. Both sides yield
/// byte-identical pop order (see the equivalence tests below).
// The wheel variant is ~1.2 KB (inline bucket heads + bitmaps) against the
// heap's three words — but the wheel is the production variant on the event
// hot path, so boxing it (clippy's suggestion) would trade one inline enum
// for a pointer chase per push/pop. One such enum exists per simulator.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum EventQueue<T> {
    /// Hierarchical timer wheel (default).
    Wheel(TimerWheel<T>),
    /// Reference binary heap.
    Heap(HeapQueue<T>),
}

impl<T> EventQueue<T> {
    /// A queue of the requested flavor.
    pub fn new(scheduler: Scheduler) -> EventQueue<T> {
        match scheduler {
            Scheduler::Wheel => EventQueue::Wheel(TimerWheel::new()),
            Scheduler::Heap => EventQueue::Heap(HeapQueue::new()),
        }
    }

    /// Which implementation this queue runs on.
    pub fn scheduler(&self) -> Scheduler {
        match self {
            EventQueue::Wheel(_) => Scheduler::Wheel,
            EventQueue::Heap(_) => Scheduler::Heap,
        }
    }

    /// Pending event count (tombstoned timers included).
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.len(),
            EventQueue::Heap(h) => h.len(),
        }
    }

    /// True when no event is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` at `(time, seq)`.
    pub fn push(&mut self, time: u64, seq: u64, payload: T) {
        match self {
            EventQueue::Wheel(w) => w.push(time, seq, payload),
            EventQueue::Heap(h) => h.push(time, seq, payload),
        }
    }

    /// Earliest pending event's time (settles the wheel).
    pub fn peek_time(&mut self) -> Option<u64> {
        match self {
            EventQueue::Wheel(w) => w.peek_time(),
            EventQueue::Heap(h) => h.peek_time(),
        }
    }

    /// Remove and return the earliest `(time, seq, payload)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        match self {
            EventQueue::Wheel(w) => w.pop(),
            EventQueue::Heap(h) => h.pop(),
        }
    }
}

/// Wheel level for a delta known to be `< WHEEL_HORIZON`.
fn level_for(delta: u64) -> usize {
    debug_assert!(delta < WHEEL_HORIZON);
    if delta < 1 << WHEEL_SLOT_BITS {
        0
    } else if delta < 1 << (2 * WHEEL_SLOT_BITS) {
        1
    } else if delta < 1 << (3 * WHEEL_SLOT_BITS) {
        2
    } else {
        3
    }
}

/// Opaque handle to an armed timer slot: slab index + the generation the
/// slot had when armed. A stale handle (slot since recycled) no longer
/// matches the slot's generation, so cancel-after-fire and double-cancel are
/// cheap no-ops instead of hash-set probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken {
    slot: u32,
    gen: u32,
}

#[derive(Debug, Clone, Copy)]
struct TimerSlot {
    gen: u32,
    next_free: u32,
}

/// Generation-stamped timer slab: the O(1), hash-free replacement for the
/// simulator's old `armed: HashSet<TimerId>`. `arm` hands out a token;
/// exactly one subsequent [`disarm`](Self::disarm) (from either the cancel
/// path or the fire path — whichever gets there first) returns `true` and
/// recycles the slot; every later call with the same token sees a bumped
/// generation and returns `false`.
#[derive(Debug, Default)]
pub struct TimerSlab {
    slots: Vec<TimerSlot>,
    free: u32,
    armed: usize,
}

impl TimerSlab {
    /// An empty slab.
    pub fn new() -> TimerSlab {
        TimerSlab { slots: Vec::new(), free: NIL, armed: 0 }
    }

    /// Number of currently armed timers.
    pub fn armed(&self) -> usize {
        self.armed
    }

    /// Allocated slot capacity (for bookkeeping tests: churn must recycle
    /// slots, not grow the slab).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Arm a timer, returning its token.
    pub fn arm(&mut self) -> TimerToken {
        self.armed += 1;
        if self.free != NIL {
            let slot = self.free;
            self.free = self.slots[slot as usize].next_free;
            TimerToken { slot, gen: self.slots[slot as usize].gen }
        } else {
            let slot = u32::try_from(self.slots.len()).expect("timer slab overflow");
            self.slots.push(TimerSlot { gen: 0, next_free: NIL });
            TimerToken { slot, gen: 0 }
        }
    }

    /// Disarm the timer behind `token`. Returns `true` iff the token was
    /// still live — i.e. this call is the one that retires it. The fire path
    /// uses the return value to drop tombstoned (already-cancelled) events.
    pub fn disarm(&mut self, token: TimerToken) -> bool {
        let slot = &mut self.slots[token.slot as usize];
        if slot.gen != token.gen {
            return false;
        }
        slot.gen = slot.gen.wrapping_add(1);
        slot.next_free = self.free;
        self.free = token.slot;
        self.armed -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// Drain both queues fully, asserting identical (time, seq, payload)
    /// streams.
    fn assert_drain_identical(mut wheel: TimerWheel<u64>, mut heap: HeapQueue<u64>) {
        loop {
            assert_eq!(wheel.len(), heap.len());
            assert_eq!(wheel.peek_time(), heap.peek_time());
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (w, h) => assert_eq!(w, h),
            }
        }
    }

    #[test]
    fn single_event_round_trips() {
        let mut w = TimerWheel::new();
        w.push(42, 1, "x");
        assert_eq!(w.len(), 1);
        assert_eq!(w.peek_time(), Some(42));
        assert_eq!(w.pop(), Some((42, 1, "x")));
        assert!(w.is_empty());
        assert_eq!(w.pop(), None);
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    fn equal_times_break_by_seq() {
        let mut w = TimerWheel::new();
        w.push(10, 3, "c");
        w.push(10, 1, "a");
        w.push(10, 2, "b");
        assert_eq!(w.pop(), Some((10, 1, "a")));
        assert_eq!(w.pop(), Some((10, 2, "b")));
        assert_eq!(w.pop(), Some((10, 3, "c")));
    }

    #[test]
    fn far_future_events_overflow_and_promote() {
        let mut w = TimerWheel::new();
        w.push(WHEEL_HORIZON * 3 + 17, 1, "far");
        w.push(5, 2, "near");
        assert_eq!(w.pop(), Some((5, 2, "near")));
        assert_eq!(w.peek_time(), Some(WHEEL_HORIZON * 3 + 17));
        assert_eq!(w.pop(), Some((WHEEL_HORIZON * 3 + 17, 1, "far")));
        assert!(w.is_empty());
    }

    #[test]
    fn push_below_cursor_still_pops_in_global_order() {
        let mut w = TimerWheel::new();
        w.push(1_000_000, 1, "late");
        // Settling for peek advances the cursor to 1_000_000...
        assert_eq!(w.peek_time(), Some(1_000_000));
        // ...and an epoch-exchange style injection lands before it.
        w.push(250_000, 2, "injected");
        w.push(250_000, 3, "injected2");
        assert_eq!(w.pop(), Some((250_000, 2, "injected")));
        assert_eq!(w.pop(), Some((250_000, 3, "injected2")));
        assert_eq!(w.pop(), Some((1_000_000, 1, "late")));
    }

    #[test]
    fn push_at_current_batch_tick_joins_the_batch() {
        let mut w = TimerWheel::new();
        w.push(7, 1, 10u64);
        assert_eq!(w.pop(), Some((7, 1, 10)));
        // Cursor now sits at 7; a handler pushing at "now" must fire next.
        w.push(7, 2, 20u64);
        w.push(8, 3, 30u64);
        assert_eq!(w.pop(), Some((7, 2, 20)));
        assert_eq!(w.pop(), Some((8, 3, 30)));
    }

    #[test]
    fn level_boundaries_cascade_correctly() {
        // Events straddling every level boundary, pushed out of order.
        let times =
            [63, 64, 65, 4095, 4096, 4097, 262_143, 262_144, 262_145, WHEEL_HORIZON - 1, WHEEL_HORIZON, 0];
        let mut w = TimerWheel::new();
        let mut h = HeapQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            w.push(t, seq as u64, t);
            h.push(t, seq as u64, t);
        }
        assert_drain_identical(w, h);
    }

    #[test]
    fn randomized_interleavings_match_heap() {
        // The core equivalence property test: random push/pop/peek
        // interleavings with the soak's kind of time mix (near deliveries,
        // second-scale cadences, far-future overflow, below-cursor
        // injections after settling peeks) produce identical streams.
        let mut rng = SimRng::new(0xE1E4);
        for round in 0..40 {
            let mut w = TimerWheel::new();
            let mut h = HeapQueue::new();
            let mut seq = 0u64;
            let mut now = 0u64; // last popped time, like the sim clock
            for _ in 0..2_000 {
                match rng.range_u64(0, 10) {
                    // 60%: push at a soak-like delta from "now".
                    0..=5 => {
                        seq += 1;
                        let delta = match rng.range_u64(0, 100) {
                            0..=59 => rng.range_u64(0, 200_000),        // link RTTs
                            60..=89 => rng.range_u64(200_000, 5_000_000), // cadences
                            90..=97 => rng.range_u64(0, 64),             // sub-tick
                            _ => WHEEL_HORIZON + rng.range_u64(0, WHEEL_HORIZON), // overflow
                        };
                        w.push(now + delta, seq, seq);
                        h.push(now + delta, seq, seq);
                    }
                    // 30%: pop (drives the cursor forward).
                    6..=8 => {
                        let pw = w.pop();
                        assert_eq!(pw, h.pop(), "round {round}");
                        if let Some((t, _, _)) = pw {
                            now = t;
                        }
                    }
                    // 10%: exact peek — forces the wheel to settle, so later
                    // pushes near `now` exercise the antedated lane.
                    _ => {
                        assert_eq!(w.peek_time(), h.peek_time(), "round {round}");
                    }
                }
                assert_eq!(w.len(), h.len(), "round {round}");
            }
            assert_drain_identical(w, h);
        }
    }

    #[test]
    fn dense_same_tick_bursts_preserve_seq_order() {
        let mut w = TimerWheel::new();
        let mut h = HeapQueue::new();
        let mut seq = 0;
        for t in [100u64, 100, 101, 100, 163, 164, 100, 4096] {
            seq += 1;
            w.push(t, seq, seq);
            h.push(t, seq, seq);
        }
        assert_drain_identical(w, h);
    }

    #[test]
    fn arena_recycles_slots() {
        let mut w = TimerWheel::new();
        let mut seq = 0u64;
        for wave in 0..100u64 {
            for i in 0..50 {
                seq += 1;
                w.push(wave * 1000 + i, seq, seq);
            }
            for _ in 0..50 {
                w.pop().unwrap();
            }
        }
        // Steady-state churn must not grow the arena past one wave (+ slack
        // for entries parked across level boundaries mid-wave).
        assert!(w.arena.len() <= 128, "arena grew to {}", w.arena.len());
    }

    #[test]
    fn timer_slab_generations_make_stale_tokens_dead() {
        let mut slab = TimerSlab::new();
        let a = slab.arm();
        let b = slab.arm();
        assert_eq!(slab.armed(), 2);
        assert!(slab.disarm(a), "first disarm retires the timer");
        assert!(!slab.disarm(a), "cancel after fire is a dead no-op");
        let c = slab.arm(); // recycles a's slot with a bumped generation
        assert_eq!(c.slot, a.slot);
        assert_ne!(c.gen, a.gen);
        assert!(!slab.disarm(a), "stale token cannot kill the recycled slot");
        assert!(slab.disarm(c));
        assert!(slab.disarm(b));
        assert_eq!(slab.armed(), 0);
    }

    #[test]
    fn timer_slab_churn_recycles_instead_of_growing() {
        let mut slab = TimerSlab::new();
        for _ in 0..10_000 {
            let t = slab.arm();
            assert!(slab.disarm(t));
        }
        assert_eq!(slab.capacity(), 1);
        assert_eq!(slab.armed(), 0);
    }

    #[test]
    fn event_queue_dispatch_matches_both_ways() {
        for scheduler in [Scheduler::Wheel, Scheduler::Heap] {
            let mut q = EventQueue::new(scheduler);
            assert_eq!(q.scheduler(), scheduler);
            q.push(9, 1, "a");
            q.push(3, 2, "b");
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time(), Some(3));
            assert_eq!(q.pop(), Some((3, 2, "b")));
            assert_eq!(q.pop(), Some((9, 1, "a")));
            assert!(q.is_empty());
        }
    }
}
