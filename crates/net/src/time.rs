//! Virtual time: microsecond-resolution instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Instant at `us` microseconds since epoch. The microsecond is also the
    /// event scheduler's wheel tick (see [`crate::queue`]): one `SimTime`
    /// unit == one level-0 timer-wheel slot.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Microseconds since epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since epoch as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant. Saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// From whole milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// From whole seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// From fractional seconds (negative clamps to zero).
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1e6).round() as u64)
        }
    }

    /// Microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t - SimTime(500_000), SimDuration::from_secs(1));
        // Saturating behaviour for reversed operands.
        assert_eq!(SimTime(0) - SimTime(100), SimDuration::ZERO);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(10).since(SimTime(50)), SimDuration::ZERO);
        assert_eq!(SimTime(50).since(SimTime(10)), SimDuration(40));
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration =
            [SimDuration::from_millis(100), SimDuration::from_millis(250)].into_iter().sum();
        assert_eq!(total, SimDuration::from_millis(350));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration(500).to_string(), "500µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs_f64(1.25).to_string(), "1.250s");
    }
}
