//! SLO rules, the alert engine, and the in-sim monitor node.
//!
//! The paper's gateway must stay reachable while handhelds are away; this
//! module is the layer that *interprets* the telemetry of
//! [`crate::telemetry`] against declarative service-level objectives:
//!
//! * [`SloRule`] — upper-bound rules over scraped signals: windowed
//!   `p99(stage)`, cumulative error ratios, instantaneous gauges, and a
//!   two-window burn rate.
//! * [`SloEngine`] — pure evaluation state machine: feed it snapshots on a
//!   cadence, get [`AlertTransition`]s (fired/resolved edges) back. No sim
//!   types, so it is unit-testable in isolation.
//! * [`SloMonitor`] — a [`Node`] that scrapes its targets' `GET /metrics` +
//!   `GET /healthz` over the modeled links on a sim-timer cadence, feeds the
//!   engine, and emits `AlertFired`/`AlertResolved` events into the obs
//!   [`Collector`](crate::obs::Collector) with a per-episode trace id. Each
//!   alert episode is also a span (`slo.alert`), so time-to-resolve lands in
//!   the stage histograms like any other latency.
//!
//! Monitors run a *bounded* number of rounds so `run_until_idle` still
//! drains, and they are deliberately cell-local in sharded soaks: their
//! links get their own RNG streams, so enabling monitoring never perturbs
//! protocol traffic (the same argument as PR 2's zero-cost tracing).

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;

use bytes::Bytes;

use crate::federation::merge_snapshot;
use crate::http::{self, HttpClient, HttpRequest, HttpStatus, TimerOutcome};
use crate::message::Message;
use crate::metrics::KEY_QUEUE_DEPTH;
use crate::obs::Histogram;
use crate::paging::{page_fire, page_resolve};
use crate::sim::{Ctx, Node, NodeId};
use crate::telemetry::{
    escape_label, parse_epoch_header, parse_prom, parse_since, write_value, DeltaState,
    TelemetrySnapshot, PATH_HEALTHZ, PATH_METRICS,
};
use crate::time::{SimDuration, SimTime};

/// Synthetic gauge the monitor injects before evaluation: consecutive
/// failed probes against the target (reset by any successful `/healthz`).
pub const KEY_PROBE_FAILURES: &str = "monitor.consecutive_probe_failures";
/// Synthetic gauge the monitor injects: microseconds since the target's last
/// successful `/metrics` scrape (sim time itself until the first one lands).
/// The federation plane is SLO-guarded through this signal.
pub const KEY_SCRAPE_STALENESS: &str = "scrape.staleness_max";
/// Synthetic stage the monitor injects: round-trip time of `/metrics`
/// scrapes, measured from first transmission (retransmissions included —
/// that *is* the tail a real scraper sees).
pub const STAGE_SCRAPE_RTT: &str = "scrape.rtt";

/// What a rule measures. All signals are compared as upper bounds: the rule
/// is healthy while `value <= limit`.
#[derive(Debug, Clone, PartialEq)]
pub enum SloSignal {
    /// p99 of a stage histogram over the window since the last evaluation
    /// (cumulative scrapes are diffed; an empty window reads 0 — no
    /// observations, no violation). Value is in microseconds.
    StageP99 {
        /// Stage name as it appears in the exposition, e.g. `scrape.rtt`.
        stage: String,
    },
    /// Cumulative `errors / total` over two counters (0 while `total` is 0).
    ErrorRatio {
        /// Counter key of the failure count.
        errors: String,
        /// Counter key of the attempt count.
        total: String,
    },
    /// The instantaneous value of a gauge.
    Gauge {
        /// Gauge key, e.g. `gateway.replay_entries`.
        key: String,
    },
    /// Two-window burn rate over an error/total counter pair: the value is
    /// `min(short-window ratio, long-window ratio)`, so the rule only fires
    /// while *both* windows burn above the limit — the classic fast+slow
    /// window pairing that ignores blips but catches sustained burn.
    BurnRate {
        /// Counter key of the failure count.
        errors: String,
        /// Counter key of the attempt count.
        total: String,
        /// Short window length, in evaluation cadences.
        short: usize,
        /// Long window length, in evaluation cadences (`>= short`).
        long: usize,
    },
}

/// A declarative upper-bound rule: healthy while `signal <= limit`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Rule name (used in events, reports and flight dumps).
    pub name: String,
    /// The measured signal.
    pub signal: SloSignal,
    /// Inclusive upper bound for the healthy state.
    pub limit: f64,
    /// Resolve threshold: a breached rule only resolves once the value
    /// drops back to `resolve_limit` or below. Equal to `limit` by default
    /// (no hysteresis); set lower via [`SloRule::with_resolve`] so noisy
    /// gauges hovering at the limit don't flap fire/resolve every cadence.
    pub resolve_limit: f64,
}

impl SloRule {
    /// `p99(stage) <= limit_us` over each evaluation window.
    pub fn p99(name: &str, stage: &str, limit_us: f64) -> SloRule {
        SloRule {
            name: name.to_owned(),
            signal: SloSignal::StageP99 { stage: stage.to_owned() },
            limit: limit_us,
            resolve_limit: limit_us,
        }
    }

    /// `errors/total <= limit` (cumulative).
    pub fn error_ratio(name: &str, errors: &str, total: &str, limit: f64) -> SloRule {
        SloRule {
            name: name.to_owned(),
            signal: SloSignal::ErrorRatio { errors: errors.to_owned(), total: total.to_owned() },
            limit,
            resolve_limit: limit,
        }
    }

    /// `gauge(key) <= limit`.
    pub fn gauge(name: &str, key: &str, limit: f64) -> SloRule {
        SloRule {
            name: name.to_owned(),
            signal: SloSignal::Gauge { key: key.to_owned() },
            limit,
            resolve_limit: limit,
        }
    }

    /// Two-window burn rate: fires while both the `short`- and
    /// `long`-cadence windows burn `errors/total` above `limit`.
    pub fn burn_rate(
        name: &str,
        errors: &str,
        total: &str,
        short: usize,
        long: usize,
        limit: f64,
    ) -> SloRule {
        SloRule {
            name: name.to_owned(),
            signal: SloSignal::BurnRate {
                errors: errors.to_owned(),
                total: total.to_owned(),
                short: short.max(1),
                long: long.max(short.max(1)),
            },
            limit,
            resolve_limit: limit,
        }
    }

    /// Resolve hysteresis (builder-style): once breached, the rule stays
    /// breached until the value falls to `resolve_limit` or below.
    pub fn with_resolve(mut self, resolve_limit: f64) -> SloRule {
        self.resolve_limit = resolve_limit.min(self.limit);
        self
    }
}

/// A fired/resolved edge produced by [`SloEngine::evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Rule name.
    pub rule: String,
    /// `true` = AlertFired, `false` = AlertResolved.
    pub fired: bool,
    /// The observed value at the transition.
    pub value: f64,
    /// The rule's limit.
    pub limit: f64,
    /// Exemplar trace id behind the breached signal (0 = none). For
    /// `StageP99` fires this is the highest-bucket exemplar the snapshot
    /// carries for the stage — the concrete trace whose latency sits in the
    /// breached tail.
    pub exemplar: u64,
}

/// Per-rule evaluation state.
#[derive(Debug, Clone, Default)]
struct RuleState {
    breached: bool,
    evaluations: u64,
    fired: u64,
    resolved: u64,
    last_value: f64,
    /// Cumulative stage histogram at the previous evaluation (StageP99).
    prev_stage: Histogram,
    /// Recent cumulative `(errors, total)` samples, newest last (BurnRate).
    samples: VecDeque<(f64, f64)>,
}

/// Aggregated per-rule outcome for reports (`slo` section of BENCH json).
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Rule name.
    pub name: String,
    /// The rule's limit.
    pub limit: f64,
    /// Evaluations performed.
    pub evaluations: u64,
    /// Fired edges.
    pub fired: u64,
    /// Resolved edges.
    pub resolved: u64,
    /// Is the rule breached right now (fired and unresolved)?
    pub breached: bool,
    /// Last observed value.
    pub last_value: f64,
}

/// The pure rule-evaluation state machine: rules in, snapshots in on a
/// cadence, alert edges out.
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    rules: Vec<(SloRule, RuleState)>,
}

impl SloEngine {
    /// Engine over a fixed rule set.
    pub fn new(rules: Vec<SloRule>) -> SloEngine {
        SloEngine { rules: rules.into_iter().map(|r| (r, RuleState::default())).collect() }
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Evaluate every rule against a snapshot, returning the transitions
    /// (edges only — a rule that stays breached or stays healthy is silent).
    pub fn evaluate(&mut self, snap: &TelemetrySnapshot) -> Vec<AlertTransition> {
        let mut out = Vec::new();
        for (rule, state) in &mut self.rules {
            let mut exemplar = 0u64;
            let value = match &rule.signal {
                SloSignal::StageP99 { stage } => match snap.stage(stage) {
                    Some(cur) => {
                        exemplar = snap.exemplar_for(stage);
                        let window = cur.diff(&state.prev_stage);
                        state.prev_stage = cur.clone();
                        if window.count() == 0 {
                            0.0
                        } else {
                            window.p99() as f64
                        }
                    }
                    None => 0.0,
                },
                SloSignal::ErrorRatio { errors, total } => {
                    let t = snap.counter(total);
                    if t > 0.0 {
                        snap.counter(errors) / t
                    } else {
                        0.0
                    }
                }
                SloSignal::Gauge { key } => snap.gauge(key),
                SloSignal::BurnRate { errors, total, short, long } => {
                    state.samples.push_back((snap.counter(errors), snap.counter(total)));
                    while state.samples.len() > long + 1 {
                        state.samples.pop_front();
                    }
                    let rate = |window: usize, samples: &VecDeque<(f64, f64)>| -> f64 {
                        let newest = samples.len() - 1;
                        let base = newest.saturating_sub(window);
                        let (e0, t0) = samples[base];
                        let (e1, t1) = samples[newest];
                        let dt = t1 - t0;
                        if dt > 0.0 {
                            (e1 - e0) / dt
                        } else {
                            0.0
                        }
                    };
                    f64::min(rate(*short, &state.samples), rate(*long, &state.samples))
                }
            };
            state.evaluations += 1;
            state.last_value = value;
            // Hysteresis: an open breach only resolves below resolve_limit.
            let breach = if state.breached {
                value > rule.resolve_limit
            } else {
                value > rule.limit
            };
            if breach != state.breached {
                state.breached = breach;
                if breach {
                    state.fired += 1;
                } else {
                    state.resolved += 1;
                }
                out.push(AlertTransition {
                    rule: rule.name.clone(),
                    fired: breach,
                    value,
                    limit: rule.limit,
                    exemplar: if breach { exemplar } else { 0 },
                });
            }
        }
        out
    }

    /// Per-rule outcome digests, in rule order.
    pub fn reports(&self) -> Vec<SloReport> {
        self.rules
            .iter()
            .map(|(r, s)| SloReport {
                name: r.name.clone(),
                limit: r.limit,
                evaluations: s.evaluations,
                fired: s.fired,
                resolved: s.resolved,
                breached: s.breached,
                last_value: s.last_value,
            })
            .collect()
    }

    /// Rules currently breached (fired and unresolved).
    pub fn breached(&self) -> usize {
        self.rules.iter().filter(|(_, s)| s.breached).count()
    }
}

/// Monitor configuration.
#[derive(Debug, Clone)]
pub struct MonitorSpec {
    /// Scrape interval.
    pub cadence: SimDuration,
    /// Total scrape rounds — bounded, so simulations always drain.
    pub rounds: u32,
    /// Per-request retransmission timeout for probes/scrapes.
    pub rto: SimDuration,
    /// Retransmissions before a probe counts as failed.
    pub retries: u32,
    /// The rule set every target is evaluated against.
    pub rules: Vec<SloRule>,
    /// Conditional scrapes: ask each target for `?since=<last epoch>` so
    /// steady-state scrapes carry only changed series. Off = every scrape
    /// ships the full exposition.
    pub delta: bool,
    /// With `delta` on, every Nth round (and the first) is a full-snapshot
    /// resync round, bounding how long a lost update could go unnoticed.
    pub resync_every: u32,
}

impl Default for MonitorSpec {
    fn default() -> MonitorSpec {
        MonitorSpec {
            cadence: SimDuration::from_secs(5),
            rounds: 6,
            rto: SimDuration::from_secs(2),
            retries: 1,
            rules: Vec::new(),
            delta: true,
            resync_every: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Probe {
    Health,
    Metrics,
}

#[derive(Debug)]
struct TargetState {
    node: NodeId,
    instance: String,
    engine: SloEngine,
    /// Cumulative scrape-RTT histogram (the engine windows it by diffing).
    rtt: Histogram,
    consecutive_failures: f64,
    /// When the last successful `/metrics` scrape of this target landed.
    last_ok: Option<SimTime>,
    last_snap: TelemetrySnapshot,
    /// The target's snapshot epoch `last_snap` corresponds to (`None` until
    /// a delta-aware full snapshot lands — the next scrape must be full).
    last_epoch: Option<u64>,
    /// rule name → trace id of the open alert episode.
    episodes: HashMap<String, u64>,
    /// rule name → open `slo.alert` span id.
    open_spans: HashMap<String, u32>,
}

/// Timer tag for the scrape cadence (below `HTTP_TIMER_BASE`).
const TAG_SCRAPE: u64 = 1;

/// The scraping monitor node. See the module docs for the protocol.
///
/// Besides scraping, a monitor *serves* `GET /metrics` itself: its cell view
/// is its own metrics merged with every target's last snapshot (plus the
/// synthetic probe/staleness/RTT signals), so a fleet-level
/// [`FederationScraper`](crate::federation::FederationScraper) can federate
/// cells through their monitors with one WAN fan-in link per cell.
#[derive(Debug)]
pub struct SloMonitor {
    spec: MonitorSpec,
    /// Instance label of this monitor's own exposition (cell view).
    instance: String,
    /// Paging gateway the monitor notifies on alert edges, if any.
    pager: Option<NodeId>,
    targets: Vec<TargetState>,
    http: HttpClient,
    round: u32,
    /// req_id → (target index, which probe, first-transmission time).
    pending: HashMap<u64, (usize, Probe, SimTime)>,
    /// Monotonic version of the served cell view: bumped whenever target
    /// state changes, so the serve path re-renders only when the view could
    /// actually differ (the cache-invalidation signal).
    view_version: u64,
    /// `view_version` the delta state last observed.
    observed_version: u64,
    /// Delta state over the served cell view (minus the volatile staleness
    /// gauge, which is a function of `now` and rides outside the cache).
    serve_delta: DeltaState,
    /// Pooled render buffer for served scrapes.
    body: String,
    /// Length of the cached (epoch-stable) prefix of `body`; the staleness
    /// gauge is re-appended past it on every reply.
    body_core: usize,
    /// `(epoch, since)` the buffer's cached prefix holds.
    cached: Option<(u64, Option<u64>)>,
    /// Successful `/metrics` scrapes.
    pub scrapes_ok: u64,
    /// Probes that exhausted their retries.
    pub probe_failures: u64,
    /// Epoch-gap resyncs: deltas discarded for a base we no longer hold,
    /// answered by an immediate full refetch.
    pub resyncs: u64,
}

impl SloMonitor {
    /// Monitor over `(target node, instance name)` pairs.
    pub fn new(spec: MonitorSpec, targets: Vec<(NodeId, String)>) -> SloMonitor {
        let mut http = HttpClient::new();
        http.timeout = spec.rto;
        http.max_retries = spec.retries;
        let targets = targets
            .into_iter()
            .map(|(node, instance)| TargetState {
                node,
                instance,
                engine: SloEngine::new(spec.rules.clone()),
                rtt: Histogram::new(),
                consecutive_failures: 0.0,
                last_ok: None,
                last_snap: TelemetrySnapshot::default(),
                last_epoch: None,
                episodes: HashMap::new(),
                open_spans: HashMap::new(),
            })
            .collect();
        SloMonitor {
            spec,
            instance: "monitor".to_owned(),
            pager: None,
            targets,
            http,
            round: 0,
            pending: HashMap::new(),
            view_version: 1,
            observed_version: 0,
            serve_delta: DeltaState::new(),
            body: String::new(),
            body_core: 0,
            cached: None,
            scrapes_ok: 0,
            probe_failures: 0,
            resyncs: 0,
        }
    }

    /// Set the instance label of the monitor's own cell-view exposition.
    pub fn with_instance(mut self, instance: impl Into<String>) -> SloMonitor {
        self.instance = instance.into();
        self
    }

    /// Notify a [`PagingGateway`](crate::paging::PagingGateway) on every
    /// alert edge.
    pub fn with_pager(mut self, pager: NodeId) -> SloMonitor {
        self.pager = Some(pager);
        self
    }

    /// Per-target rule reports: `(instance, reports)` in target order.
    pub fn reports(&self) -> Vec<(String, Vec<SloReport>)> {
        self.targets.iter().map(|t| (t.instance.clone(), t.engine.reports())).collect()
    }

    /// Rules currently breached across all targets.
    pub fn breached(&self) -> usize {
        self.targets.iter().map(|t| t.engine.breached()).sum()
    }

    /// Staleness of one target at `now`: microseconds since its last
    /// successful scrape, or sim time itself before the first one lands.
    fn staleness(t: &TargetState, now: SimTime) -> f64 {
        t.last_ok.map_or(now.0, |ok| now.since(ok).0) as f64
    }

    /// The engine's evaluation view for one target: last scraped snapshot
    /// plus the synthetic probe-failure/staleness gauges and scrape-RTT
    /// stage.
    fn observed(t: &TargetState, now: SimTime) -> TelemetrySnapshot {
        let mut snap = t.last_snap.clone();
        snap.gauges.push((KEY_PROBE_FAILURES.to_owned(), t.consecutive_failures));
        snap.gauges.push((KEY_SCRAPE_STALENESS.to_owned(), Self::staleness(t, now)));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.stages.push((STAGE_SCRAPE_RTT.to_owned(), t.rtt.clone()));
        snap.stages.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }

    /// The cell view the monitor serves at `GET /metrics`: its own metrics
    /// merged with every target's observed snapshot, in target order. The
    /// `sim.queue_depth` gauge is stripped — it reads a *shard's* event
    /// queue, which depends on how the fleet is partitioned, and federated
    /// rollups must be byte-identical across shard counts. The staleness
    /// gauge is fixed up to the max across targets (merge sums gauges).
    fn cell_view(&self, ctx: &mut Ctx<'_>) -> TelemetrySnapshot {
        let now = ctx.now();
        let mut view = TelemetrySnapshot::capture(ctx.metrics(), &[]);
        for t in &self.targets {
            let mut snap = Self::observed(t, now);
            snap.gauges.retain(|(k, _)| k != KEY_QUEUE_DEPTH);
            merge_snapshot(&mut view, &snap);
        }
        let max_staleness =
            self.targets.iter().map(|t| Self::staleness(t, now)).fold(0.0, f64::max);
        if let Some(g) = view.gauges.iter_mut().find(|(k, _)| k == KEY_SCRAPE_STALENESS) {
            g.1 = max_staleness;
        }
        view
    }

    fn evaluate_target(&mut self, ctx: &mut Ctx<'_>, tidx: usize) {
        let snap = Self::observed(&self.targets[tidx], ctx.now());
        let t = &mut self.targets[tidx];
        let transitions = t.engine.evaluate(&snap);
        ctx.metrics().bump("slo.evaluations", 1.0);
        for tr in transitions {
            let instance = self.targets[tidx].instance.clone();
            if tr.fired {
                let trace = ctx.obs_new_trace();
                let span = ctx.span_begin(trace, 0, "slo.alert");
                let t = &mut self.targets[tidx];
                t.episodes.insert(tr.rule.clone(), trace);
                t.open_spans.insert(tr.rule.clone(), span);
                ctx.metrics().bump("slo.alerts_fired", 1.0);
                ctx.obs_alert(&tr.rule, &instance, true, tr.value, tr.limit, trace, tr.exemplar);
                if let Some(pager) = self.pager {
                    ctx.send(
                        pager,
                        page_fire(&tr.rule, &instance, tr.value, tr.limit, trace, tr.exemplar),
                    );
                }
            } else {
                let t = &mut self.targets[tidx];
                let trace = t.episodes.remove(&tr.rule).unwrap_or(0);
                let span = t.open_spans.remove(&tr.rule).unwrap_or(0);
                ctx.span_end(span);
                ctx.metrics().bump("slo.alerts_resolved", 1.0);
                ctx.obs_alert(&tr.rule, &instance, false, tr.value, tr.limit, trace, 0);
                if let Some(pager) = self.pager {
                    ctx.send(pager, page_resolve(&tr.rule, &instance));
                }
            }
        }
    }

    fn scrape_all(&mut self, ctx: &mut Ctx<'_>) {
        // Every `resync_every`-th round (and the first) scrapes full
        // snapshots even in delta mode, bounding resync debt.
        let full_round =
            !self.spec.delta || (self.round - 1).is_multiple_of(self.spec.resync_every.max(1));
        for tidx in 0..self.targets.len() {
            let node = self.targets[tidx].node;
            let now = ctx.now();
            let health = HttpRequest::new("GET", PATH_HEALTHZ, Vec::new());
            let id = self.http.send(ctx, node, health);
            self.pending.insert(id, (tidx, Probe::Health, now));
            let since = if full_round { None } else { self.targets[tidx].last_epoch };
            let metrics = match since {
                Some(e) => HttpRequest::new("GET", format!("{PATH_METRICS}?since={e}"), Vec::new()),
                None => HttpRequest::new("GET", PATH_METRICS, Vec::new()),
            };
            let id = self.http.send(ctx, node, metrics);
            self.pending.insert(id, (tidx, Probe::Metrics, now));
        }
    }
}

impl Node for SloMonitor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.spec.rounds > 0 && !self.targets.is_empty() {
            ctx.set_timer(self.spec.cadence, TAG_SCRAPE);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        // Serve the cell view: the monitor is itself a federation target.
        if let Some(req) = HttpRequest::from_message(&msg) {
            let (path, since) = parse_since(&req.path);
            if req.method == "GET" && path == PATH_METRICS {
                // The rendered view is cached until target state actually
                // changes (`view_version`); re-scrapes of an unchanged cell
                // reuse the buffer byte-for-byte. The staleness gauge is a
                // function of `now`, not of target state, so it rides
                // *outside* the cached prefix and is re-appended fresh to
                // every reply.
                if self.observed_version != self.view_version {
                    let mut view = self.cell_view(ctx);
                    view.gauges.retain(|(k, _)| k != KEY_SCRAPE_STALENESS);
                    self.serve_delta.observe(&view);
                    self.observed_version = self.view_version;
                }
                let epoch = self.serve_delta.epoch();
                let since = since.filter(|&s| self.serve_delta.can_delta(s));
                if self.cached == Some((epoch, since)) {
                    ctx.metrics().bump("telemetry.render_cache_hits", 1.0);
                } else {
                    self.serve_delta.render_into(&self.instance, since, &mut self.body);
                    self.body_core = self.body.len();
                    self.cached = Some((epoch, since));
                }
                self.body.truncate(self.body_core);
                let now = ctx.now();
                let max_staleness =
                    self.targets.iter().map(|t| Self::staleness(t, now)).fold(0.0, f64::max);
                let _ = writeln!(self.body, "# TYPE pdagent_scrape_staleness_max gauge");
                let _ = write!(
                    self.body,
                    "pdagent_scrape_staleness_max{{instance=\"{}\",key=\"{KEY_SCRAPE_STALENESS}\"}} ",
                    escape_label(&self.instance)
                );
                write_value(&mut self.body, max_staleness);
                self.body.push('\n');
                ctx.metrics().bump("telemetry.scrapes", 1.0);
                http::reply(
                    ctx,
                    from,
                    &req,
                    HttpStatus::Ok,
                    Bytes::copy_from_slice(self.body.as_bytes()),
                );
            } else if req.method == "GET" && path == PATH_HEALTHZ {
                ctx.metrics().bump("telemetry.probes", 1.0);
                http::reply(ctx, from, &req, HttpStatus::Ok, b"ok".to_vec());
            } else {
                http::reply(ctx, from, &req, HttpStatus::NotFound, Vec::new());
            }
            return;
        }
        let Some(resp) = self.http.on_response(ctx, &msg) else { return };
        let Some((tidx, probe, sent)) = self.pending.remove(&resp.req_id) else { return };
        let rtt = ctx.now().since(sent);
        match probe {
            Probe::Health => {
                if resp.status.is_success() {
                    self.targets[tidx].consecutive_failures = 0.0;
                    self.view_version += 1;
                }
            }
            Probe::Metrics => {
                if resp.status.is_success() {
                    if let Ok(text) = std::str::from_utf8(&resp.body) {
                        let header = parse_epoch_header(text);
                        let gap = matches!(header, Some(h)
                            if h.base.is_some() && h.base != self.targets[tidx].last_epoch);
                        if gap {
                            // Epoch gap: a delta against a base we no longer
                            // hold. Discard it, count the resync, and refetch
                            // the full snapshot under the same probe slot.
                            self.resyncs += 1;
                            ctx.metrics().bump("slo.resyncs", 1.0);
                            let node = self.targets[tidx].node;
                            let refetch = HttpRequest::new("GET", PATH_METRICS, Vec::new());
                            let id = self.http.send(ctx, node, refetch);
                            self.pending.insert(id, (tidx, Probe::Metrics, sent));
                            return;
                        }
                        let t = &mut self.targets[tidx];
                        let prev_epoch = t.last_epoch;
                        match header {
                            Some(h) if h.base.is_some() => {
                                t.last_snap.apply_delta(&parse_prom(text));
                                t.last_epoch = Some(h.epoch);
                            }
                            Some(h) => {
                                t.last_snap = parse_prom(text);
                                t.last_epoch = Some(h.epoch);
                            }
                            None => {
                                // Legacy full body without an epoch header.
                                t.last_snap = parse_prom(text);
                                t.last_epoch = None;
                            }
                        }
                        // Serving nodes only ever bump their exposition
                        // epoch; a regression means state went backwards
                        // (the chaos suite's monotone-epochs invariant).
                        if let (Some(p), Some(n)) = (prev_epoch, t.last_epoch) {
                            if n < p {
                                ctx.metrics().bump("slo.epoch_regressions", 1.0);
                            }
                        }
                        t.last_ok = Some(ctx.now());
                        self.scrapes_ok += 1;
                        ctx.metrics().bump("slo.scrapes_ok", 1.0);
                    }
                }
                self.targets[tidx].rtt.record(rtt.0);
                self.view_version += 1;
                self.evaluate_target(ctx, tidx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match self.http.on_timer(ctx, tag) {
            TimerOutcome::Retried { .. } => return,
            TimerOutcome::GaveUp { req_id, .. } => {
                if let Some((tidx, _, _)) = self.pending.remove(&req_id) {
                    self.targets[tidx].consecutive_failures += 1.0;
                    self.probe_failures += 1;
                    ctx.metrics().bump("slo.probe_failures", 1.0);
                    self.view_version += 1;
                    self.evaluate_target(ctx, tidx);
                }
                return;
            }
            TimerOutcome::NotMine => {}
        }
        if tag == TAG_SCRAPE {
            self.round += 1;
            self.scrape_all(ctx);
            if self.round < self.spec.rounds {
                ctx.set_timer(self.spec.cadence, TAG_SCRAPE);
            }
        }
    }
}

/// Failure injection: takes the `a`↔`b` link down at `down_at` and back up
/// at `up_at` — the standard way to make latency/availability rules fire in
/// tests and chaos soaks. Cuts are refcounted in the topology, so two
/// `LinkChaos` nodes with overlapping windows on the same link keep it down
/// until the **max** end-time, not whichever `up_at` fires last. For
/// multi-fault schedules prefer a [`crate::chaos::ChaosPlan`].
#[derive(Debug)]
pub struct LinkChaos {
    /// One endpoint of the link.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// When to cut the link.
    pub down_at: SimDuration,
    /// When to restore it (must be after `down_at`).
    pub up_at: SimDuration,
}

impl Node for LinkChaos {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.down_at, 0);
        ctx.set_timer(self.up_at, 1);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _msg: Message) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == 1 {
            ctx.heal_link(self.a, self.b);
        } else {
            ctx.cut_link(self.a, self.b);
        }
        ctx.metrics().bump(if tag == 1 { "chaos.link_up" } else { "chaos.link_down" }, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(
        counters: &[(&str, f64)],
        gauges: &[(&str, f64)],
        stages: Vec<(String, Histogram)>,
    ) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot {
            counters: counters.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
            gauges: gauges.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
            stages,
            exemplars: Vec::new(),
        };
        s.counters.sort_by(|a, b| a.0.cmp(&b.0));
        s.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        s.stages.sort_by(|a, b| a.0.cmp(&b.0));
        s
    }

    #[test]
    fn gauge_rule_fires_and_resolves_on_edges() {
        let mut eng = SloEngine::new(vec![SloRule::gauge("replay-occupancy", "replay", 10.0)]);
        assert!(eng.evaluate(&snap_with(&[], &[("replay", 5.0)], vec![])).is_empty());
        let tr = eng.evaluate(&snap_with(&[], &[("replay", 11.0)], vec![]));
        assert_eq!(tr.len(), 1);
        assert!(tr[0].fired);
        assert_eq!(tr[0].value, 11.0);
        // Staying breached is silent.
        assert!(eng.evaluate(&snap_with(&[], &[("replay", 12.0)], vec![])).is_empty());
        let tr = eng.evaluate(&snap_with(&[], &[("replay", 3.0)], vec![]));
        assert_eq!(tr.len(), 1);
        assert!(!tr[0].fired);
        let rep = &eng.reports()[0];
        assert_eq!((rep.fired, rep.resolved, rep.breached), (1, 1, false));
        assert_eq!(rep.evaluations, 4);
    }

    #[test]
    fn error_ratio_is_cumulative_and_zero_safe() {
        let mut eng = SloEngine::new(vec![SloRule::error_ratio("err", "fail", "all", 0.1)]);
        // No attempts yet: healthy.
        assert!(eng.evaluate(&snap_with(&[("all", 0.0), ("fail", 0.0)], &[], vec![])).is_empty());
        let tr = eng.evaluate(&snap_with(&[("all", 10.0), ("fail", 5.0)], &[], vec![]));
        assert!(tr[0].fired && tr[0].value == 0.5);
    }

    #[test]
    fn stage_p99_windows_between_evaluations() {
        let mut eng = SloEngine::new(vec![SloRule::p99("lat", "rtt", 1000.0)]);
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(100); // all fast
        }
        assert!(eng.evaluate(&snap_with(&[], &[], vec![("rtt".to_owned(), h.clone())])).is_empty());
        // One slow sample lands in the next window: windowed p99 sees only it.
        h.record(1_000_000);
        let tr = eng.evaluate(&snap_with(&[], &[], vec![("rtt".to_owned(), h.clone())]));
        assert_eq!(tr.len(), 1, "windowed p99 must catch the regression the cumulative p99 hides");
        assert!(tr[0].fired);
        // An empty window resolves.
        let tr = eng.evaluate(&snap_with(&[], &[], vec![("rtt".to_owned(), h.clone())]));
        assert!(!tr[0].fired);
    }

    #[test]
    fn burn_rate_needs_both_windows_hot() {
        let mut eng = SloEngine::new(vec![SloRule::burn_rate("burn", "fail", "all", 1, 3, 0.5)]);
        // Warm-up: no errors.
        for i in 0..4 {
            let t = 10.0 * (i + 1) as f64;
            assert!(eng
                .evaluate(&snap_with(&[("all", t), ("fail", 0.0)], &[], vec![]))
                .is_empty());
        }
        // A single hot cadence: short window burns, long window still cold.
        let tr = eng.evaluate(&snap_with(&[("all", 50.0), ("fail", 9.0)], &[], vec![]));
        assert!(tr.is_empty(), "one bad cadence must not page");
        // Sustained burn: both windows hot.
        let tr = eng.evaluate(&snap_with(&[("all", 60.0), ("fail", 18.0)], &[], vec![]));
        let tr2 = eng.evaluate(&snap_with(&[("all", 70.0), ("fail", 27.0)], &[], vec![]));
        assert!(
            tr.iter().chain(tr2.iter()).any(|t| t.fired),
            "sustained burn must fire: {tr:?} {tr2:?}"
        );
    }

    #[test]
    fn engine_is_deterministic() {
        let rules = || {
            vec![
                SloRule::gauge("g", "x", 1.0),
                SloRule::error_ratio("e", "f", "t", 0.5),
            ]
        };
        let feed = |eng: &mut SloEngine| {
            let mut edges = Vec::new();
            for i in 0..10 {
                let v = (i % 3) as f64;
                edges.extend(eng.evaluate(&snap_with(
                    &[("f", v), ("t", 2.0 * (i + 1) as f64)],
                    &[("x", v)],
                    vec![],
                )));
            }
            edges
        };
        let mut a = SloEngine::new(rules());
        let mut b = SloEngine::new(rules());
        assert_eq!(feed(&mut a), feed(&mut b));
        assert_eq!(a.reports(), b.reports());
    }

    #[test]
    fn overlapping_link_chaos_heals_at_max_end() {
        use crate::link::LinkSpec;
        use crate::sim::Simulator;

        // Sender fires one message every 100ms; two LinkChaos windows
        // 300–600ms and 500–1050ms overlap. With last-write-wins the link
        // would come back at 600ms; refcounted cuts keep it down until
        // 1050ms, so sends 3..=10 (at 300..=1000ms) all drop.
        struct Sender {
            peer: NodeId,
            left: u32,
        }
        impl Node for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::ZERO, 0);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _msg: Message) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                if self.left == 0 {
                    return;
                }
                self.left -= 1;
                ctx.send(self.peer, Message::new("tick", Vec::new()));
                if self.left > 0 {
                    ctx.set_timer(SimDuration::from_millis(100), 0);
                }
            }
        }
        struct Sink {
            seen: u32,
        }
        impl Node for Sink {
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _msg: Message) {
                self.seen += 1;
            }
        }

        let mut sim = Simulator::new(3);
        let sink = sim.add_node(Box::new(Sink { seen: 0 }));
        let sender = sim.add_node(Box::new(Sender { peer: sink, left: 20 }));
        sim.add_node(Box::new(LinkChaos {
            a: sender,
            b: sink,
            down_at: SimDuration::from_millis(300),
            up_at: SimDuration::from_millis(600),
        }));
        sim.add_node(Box::new(LinkChaos {
            a: sender,
            b: sink,
            down_at: SimDuration::from_millis(500),
            up_at: SimDuration::from_millis(1_050),
        }));
        sim.connect(sender, sink, LinkSpec::ideal());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Sink>(sink).unwrap().seen, 12);
    }
}
