//! Deterministic chaos: declarative fault schedules, an injector node that
//! compiles them into simulator events, and the invariant layer the chaos
//! matrix checks against.
//!
//! A [`ChaosPlan`] is a list of [`Fault`]s — link partitions, loss /
//! corruption / duplication / reorder bursts, node crash (pause-and-resume)
//! windows, clock-skew ramps and scrape blackouts — each scoped to a time
//! window and addressed by *stable node labels*, never raw [`NodeId`]s. A
//! [`ChaosInjector`] placed in each shard resolves the labels it can see
//! (local nodes and remote placeholders both carry labels) and applies every
//! fault it owns at the scheduled times. Because
//!
//! * fault times come from the plan (no draws),
//! * burst randomness comes from the per-direction *chaos* streams
//!   ([`crate::link::Topology::chaos_roll`]), salted and keyed by label pair
//!   exactly like the base loss/jitter streams, and
//! * crash windows judge deliveries at their (partition-invariant) arrival
//!   times while timers are always local to the owning shard,
//!
//! any run is byte-replayable from `(seed, plan)` and invariant under the
//! shard count — the same discipline the base link model already obeys.
//! Plans serialize to a small JSON dialect (hand-rolled; the workspace has
//! no serde) so a failing case can be written to disk and replayed directly.
//!
//! The second half of this module is the invariant layer: a typed
//! [`Invariant`] trait plus [`InvariantRegistry`], checked at epoch barriers
//! (mid-run, over live counters) and at quiesce (over the final outcome),
//! and [`shrink_plan`] — the greedy fault-dropper / window-bisector /
//! intensity-halver that reduces a failing plan to a minimal reproducer.

use std::fmt::Write as _;

use crate::link::ChaosOverlay;
use crate::message::Message;
use crate::sim::{Ctx, Node, NodeId};
use crate::time::SimDuration;

// ---------------------------------------------------------------------------
// Fault model
// ---------------------------------------------------------------------------

/// What a [`Fault`] does to the system while its window is open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Cut the `a`↔`b` link (refcounted: overlapping windows heal at the
    /// max end time).
    Partition,
    /// Cut a monitor↔target link — operationally a partition, but counted
    /// as its own fault class because it starves the scrape plane rather
    /// than the workload.
    Blackout,
    /// Extra message loss on `a`↔`b` with probability `intensity`.
    Loss,
    /// Link-layer corruption (checksum discard) with probability
    /// `intensity`.
    Corrupt,
    /// Deliver a second copy of each message with probability `intensity`,
    /// offset by up to `window`.
    Duplicate,
    /// Hold messages back by up to `window` with probability `intensity`,
    /// letting later traffic overtake them.
    Reorder,
    /// Pause node `a` (drop its deliveries, park its timers), resuming at
    /// the window end — a crash-and-restart with state intact.
    Crash,
    /// Ramp node `a`'s timer clock to `intensity`× across the window, then
    /// snap back.
    ClockSkew,
}

impl FaultKind {
    /// Stable wire name (JSON `kind` field).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Partition => "partition",
            FaultKind::Blackout => "blackout",
            FaultKind::Loss => "loss",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Crash => "crash",
            FaultKind::ClockSkew => "clock_skew",
        }
    }

    /// Parse a wire name back.
    pub fn from_name(s: &str) -> Option<FaultKind> {
        Some(match s {
            "partition" => FaultKind::Partition,
            "blackout" => FaultKind::Blackout,
            "loss" => FaultKind::Loss,
            "corrupt" => FaultKind::Corrupt,
            "duplicate" => FaultKind::Duplicate,
            "reorder" => FaultKind::Reorder,
            "crash" => FaultKind::Crash,
            "clock_skew" => FaultKind::ClockSkew,
            _ => return None,
        })
    }

    /// Does this kind address a link (two labels) rather than a node?
    pub fn is_link_fault(self) -> bool {
        !matches!(self, FaultKind::Crash | FaultKind::ClockSkew)
    }

    /// Every fault class, in the order the chaos matrix sweeps them.
    pub fn all() -> [FaultKind; 8] {
        [
            FaultKind::Partition,
            FaultKind::Blackout,
            FaultKind::Loss,
            FaultKind::Corrupt,
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::Crash,
            FaultKind::ClockSkew,
        ]
    }
}

/// One scheduled fault. Link faults use both labels; node faults use only
/// `a`. `intensity` is the burst probability (or the skew factor for
/// [`FaultKind::ClockSkew`]); `window` bounds reorder/duplicate hold-back.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// What the fault does.
    pub kind: FaultKind,
    /// Stable label of the first (or only) node.
    pub a: u64,
    /// Stable label of the peer for link faults (ignored for node faults).
    pub b: u64,
    /// Window start (sim time from t=0).
    pub from: SimDuration,
    /// Window end; must be ≥ `from`.
    pub to: SimDuration,
    /// Burst probability in `[0,1]`, or the clock factor for `ClockSkew`.
    pub intensity: f64,
    /// Hold-back window for `Reorder`/`Duplicate`.
    pub window: SimDuration,
}

impl Fault {
    fn link(kind: FaultKind, a: u64, b: u64, from: SimDuration, to: SimDuration) -> Fault {
        Fault { kind, a, b, from, to, intensity: 0.0, window: SimDuration::ZERO }
    }

    /// Cut `a`↔`b` across `[from, to)`.
    pub fn partition(a: u64, b: u64, from: SimDuration, to: SimDuration) -> Fault {
        Fault::link(FaultKind::Partition, a, b, from, to)
    }

    /// Black out the `a` (monitor) ↔ `b` (target) scrape path.
    pub fn blackout(a: u64, b: u64, from: SimDuration, to: SimDuration) -> Fault {
        Fault::link(FaultKind::Blackout, a, b, from, to)
    }

    /// Extra loss burst at probability `p`.
    pub fn loss(a: u64, b: u64, from: SimDuration, to: SimDuration, p: f64) -> Fault {
        Fault { intensity: p, ..Fault::link(FaultKind::Loss, a, b, from, to) }
    }

    /// Corruption burst at probability `p`.
    pub fn corrupt(a: u64, b: u64, from: SimDuration, to: SimDuration, p: f64) -> Fault {
        Fault { intensity: p, ..Fault::link(FaultKind::Corrupt, a, b, from, to) }
    }

    /// Duplication burst at probability `p`, copies offset by up to `window`.
    pub fn duplicate(
        a: u64,
        b: u64,
        from: SimDuration,
        to: SimDuration,
        p: f64,
        window: SimDuration,
    ) -> Fault {
        Fault { intensity: p, window, ..Fault::link(FaultKind::Duplicate, a, b, from, to) }
    }

    /// Reorder burst at probability `p` with hold-back up to `window`.
    pub fn reorder(
        a: u64,
        b: u64,
        from: SimDuration,
        to: SimDuration,
        p: f64,
        window: SimDuration,
    ) -> Fault {
        Fault { intensity: p, window, ..Fault::link(FaultKind::Reorder, a, b, from, to) }
    }

    /// Crash node `a` across `[from, to)`.
    pub fn crash(a: u64, from: SimDuration, to: SimDuration) -> Fault {
        Fault::link(FaultKind::Crash, a, 0, from, to)
    }

    /// Skew node `a`'s clock to `factor`× across `[from, to)`.
    pub fn clock_skew(a: u64, from: SimDuration, to: SimDuration, factor: f64) -> Fault {
        Fault { intensity: factor, ..Fault::link(FaultKind::ClockSkew, a, 0, from, to) }
    }

    /// Could this fault, at its current intensity, ever perturb the run?
    /// Zero-probability bursts install overlays that never draw; partitions,
    /// crashes and non-unit skews always perturb.
    pub fn is_active(&self) -> bool {
        match self.kind {
            FaultKind::Partition | FaultKind::Blackout | FaultKind::Crash => true,
            FaultKind::ClockSkew => self.intensity != 1.0,
            FaultKind::Loss
            | FaultKind::Corrupt
            | FaultKind::Duplicate
            | FaultKind::Reorder => self.intensity > 0.0,
        }
    }
}

/// A declarative fault schedule: the single chaos input of a run, alongside
/// the seed. Byte-replayable: the same `(seed, plan)` pair always produces
/// the same simulation, at any shard count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosPlan {
    /// The scheduled faults, in plan order (order only breaks ties between
    /// actions landing on the same microsecond).
    pub faults: Vec<Fault>,
}

impl ChaosPlan {
    /// Empty plan.
    pub fn new() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Builder-style append.
    pub fn with(mut self, fault: Fault) -> ChaosPlan {
        self.faults.push(fault);
        self
    }

    /// A plan that cannot perturb the run (all faults inert). Such a plan
    /// must leave every digest byte-identical to a chaos-free run.
    pub fn is_inert(&self) -> bool {
        !self.faults.iter().any(Fault::is_active)
    }

    /// Render as JSON (stable field order; parse with
    /// [`ChaosPlan::parse`]).
    pub fn render(&self) -> String {
        let mut out = String::from("{\"faults\":[");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"a\":{},\"b\":{},\"from_us\":{},\"to_us\":{},\
                 \"intensity\":{},\"window_us\":{}}}",
                f.kind.name(),
                f.a,
                f.b,
                f.from.as_micros(),
                f.to.as_micros(),
                fmt_f64(f.intensity),
                f.window.as_micros(),
            );
        }
        out.push_str("]}");
        out
    }

    /// Parse a plan rendered by [`ChaosPlan::render`] (or written by hand).
    pub fn parse(text: &str) -> Result<ChaosPlan, String> {
        let v = json::parse(text)?;
        Self::from_json(&v)
    }

    /// Build a plan from an already-parsed JSON value (the repro file
    /// format embeds plans inside a larger object).
    pub fn from_json(v: &json::Jv) -> Result<ChaosPlan, String> {
        let faults = v
            .get("faults")
            .and_then(json::Jv::as_arr)
            .ok_or_else(|| "plan: missing \"faults\" array".to_owned())?;
        let mut plan = ChaosPlan::new();
        for (i, f) in faults.iter().enumerate() {
            let kind = f
                .get("kind")
                .and_then(json::Jv::as_str)
                .and_then(FaultKind::from_name)
                .ok_or_else(|| format!("fault {i}: bad \"kind\""))?;
            let num = |key: &str| -> Result<f64, String> {
                f.get(key)
                    .and_then(json::Jv::as_f64)
                    .ok_or_else(|| format!("fault {i}: missing \"{key}\""))
            };
            plan.faults.push(Fault {
                kind,
                a: num("a")? as u64,
                b: num("b")? as u64,
                from: SimDuration::from_micros(num("from_us")? as u64),
                to: SimDuration::from_micros(num("to_us")? as u64),
                intensity: num("intensity")?,
                window: SimDuration::from_micros(num("window_us")? as u64),
            });
        }
        Ok(plan)
    }
}

/// Shortest float rendering that survives a round trip (whole numbers keep
/// a `.0` so readers see a float).
fn fmt_f64(x: f64) -> String {
    let s = format!("{x}");
    if s.contains(['.', 'e', 'E', 'n', 'i']) {
        s
    } else {
        format!("{s}.0")
    }
}

// ---------------------------------------------------------------------------
// The injector node
// ---------------------------------------------------------------------------

/// What the injector does when one of its timers fires.
#[derive(Debug, Clone, Copy)]
enum Action {
    Cut { a: NodeId, b: NodeId, blackout: bool },
    Heal { a: NodeId, b: NodeId, blackout: bool },
    Overlay { a: NodeId, b: NodeId, fault: u64, loss: f64, corrupt: f64, dup: f64, reorder: f64, window: SimDuration },
    ClearOverlay { a: NodeId, b: NodeId, fault: u64 },
    Pause { node: NodeId },
    Resume { node: NodeId },
    Skew { node: NodeId, factor: f64 },
}

/// Compiles a [`ChaosPlan`] into simulator events. Place one injector in
/// every shard with the *full* plan: each instance applies the faults whose
/// labels resolve in its shard (link faults apply wherever both endpoints
/// are visible — including remote placeholders, so both sides of a
/// cross-shard link agree; node faults apply only where the node is local).
///
/// The injector is purely timer-driven and never draws randomness, so its
/// presence shifts event sequence numbers but no link-stream draws — and a
/// plan whose faults are all inert leaves every digest byte-identical to a
/// chaos-free run (asserted by the soak's zero-intensity test).
#[derive(Debug)]
pub struct ChaosInjector {
    plan: ChaosPlan,
    actions: Vec<(SimDuration, Action)>,
    /// Number of fault *windows* this instance applied (both boundary
    /// actions scheduled). Tests read it back to assert plan coverage.
    pub applied: u32,
}

impl ChaosInjector {
    /// Injector for `plan` (share the same plan across every shard).
    pub fn new(plan: ChaosPlan) -> ChaosInjector {
        ChaosInjector { plan, actions: Vec::new(), applied: 0 }
    }

    fn compile(&mut self, ctx: &Ctx<'_>) {
        let mut actions: Vec<(SimDuration, usize, Action)> = Vec::new();
        let mut seq = 0usize;
        for (i, f) in self.plan.faults.iter().enumerate() {
            // Inert faults (zero-probability bursts, 1.0 clock skew) compile
            // to nothing: a plan with every intensity at zero schedules no
            // timers and perturbs no RNG stream, so the run stays
            // byte-identical to a chaos-free one.
            if !f.is_active() {
                continue;
            }
            let to = f.to.max(f.from);
            let Some(a) = ctx.node_by_label(f.a) else { continue };
            if f.kind.is_link_fault() {
                let Some(b) = ctx.node_by_label(f.b) else { continue };
                let blackout = f.kind == FaultKind::Blackout;
                let (start, end) = match f.kind {
                    FaultKind::Partition | FaultKind::Blackout => (
                        Action::Cut { a, b, blackout },
                        Action::Heal { a, b, blackout },
                    ),
                    _ => {
                        let p = f.intensity.clamp(0.0, 1.0);
                        let overlay = Action::Overlay {
                            a,
                            b,
                            fault: i as u64,
                            loss: if f.kind == FaultKind::Loss { p } else { 0.0 },
                            corrupt: if f.kind == FaultKind::Corrupt { p } else { 0.0 },
                            dup: if f.kind == FaultKind::Duplicate { p } else { 0.0 },
                            reorder: if f.kind == FaultKind::Reorder { p } else { 0.0 },
                            window: f.window,
                        };
                        (overlay, Action::ClearOverlay { a, b, fault: i as u64 })
                    }
                };
                actions.push((f.from, seq, start));
                actions.push((to, seq + 1, end));
                seq += 2;
                self.applied += 1;
                continue;
            }
            // Node faults: only the shard hosting the node applies them.
            if ctx.is_remote(a) {
                continue;
            }
            match f.kind {
                FaultKind::Crash => {
                    actions.push((f.from, seq, Action::Pause { node: a }));
                    actions.push((to, seq + 1, Action::Resume { node: a }));
                    seq += 2;
                }
                FaultKind::ClockSkew => {
                    // Step-ramp: four evenly spaced steps from 1.0 toward
                    // the target factor, snapping back at the window end.
                    let len = to.saturating_sub(f.from);
                    let steps = if len >= SimDuration::from_micros(4) { 4u64 } else { 1 };
                    for k in 0..steps {
                        let frac = (k + 1) as f64 / steps as f64;
                        let factor = 1.0 + (f.intensity - 1.0) * frac;
                        let at = f.from + SimDuration::from_micros(len.as_micros() * k / steps);
                        actions.push((at, seq, Action::Skew { node: a, factor }));
                        seq += 1;
                    }
                    actions.push((to, seq, Action::Skew { node: a, factor: 1.0 }));
                    seq += 1;
                }
                _ => unreachable!("link faults handled above"),
            }
            self.applied += 1;
        }
        actions.sort_by_key(|x| (x.0, x.1));
        self.actions = actions.into_iter().map(|(at, _, act)| (at, act)).collect();
    }
}

impl ChaosInjector {
    fn apply(&mut self, ctx: &mut Ctx<'_>, action: Action) {
        match action {
            Action::Cut { a, b, blackout } => {
                ctx.cut_link(a, b);
                ctx.metrics()
                    .bump(if blackout { "chaos.blackout_down" } else { "chaos.link_down" }, 1.0);
            }
            Action::Heal { a, b, blackout } => {
                ctx.heal_link(a, b);
                ctx.metrics()
                    .bump(if blackout { "chaos.blackout_up" } else { "chaos.link_up" }, 1.0);
            }
            Action::Overlay { a, b, fault, loss, corrupt, dup, reorder, window } => {
                ctx.add_link_chaos(
                    a,
                    b,
                    fault,
                    ChaosOverlay { loss, corrupt, duplicate: dup, reorder, window },
                );
                ctx.metrics().bump("chaos.burst_on", 1.0);
            }
            Action::ClearOverlay { a, b, fault } => {
                ctx.remove_link_chaos(a, b, fault);
                ctx.metrics().bump("chaos.burst_off", 1.0);
            }
            Action::Pause { node } => {
                ctx.pause_node(node);
                ctx.metrics().bump("chaos.crashes", 1.0);
            }
            Action::Resume { node } => {
                ctx.resume_node(node);
                ctx.metrics().bump("chaos.resumes", 1.0);
            }
            Action::Skew { node, factor } => {
                ctx.set_clock_skew(node, factor);
                ctx.metrics().bump("chaos.skew_steps", 1.0);
            }
        }
    }
}

impl Node for ChaosInjector {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.compile(ctx);
        // Zero-time actions apply right now, during start-up, so a burst
        // whose window opens at t=0 covers even messages sent by timers
        // armed before the injector started. Later actions go on timers.
        for i in 0..self.actions.len() {
            let (at, action) = self.actions[i];
            if at == SimDuration::ZERO {
                self.apply(ctx, action);
            } else {
                ctx.set_timer(at, i as u64);
            }
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _msg: Message) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let Some(&(_, action)) = self.actions.get(tag as usize) else { return };
        self.apply(ctx, action);
    }
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

/// When an invariant is being evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckPhase {
    /// At a sharded-engine epoch barrier (live counters; the run goes on).
    Epoch(u64),
    /// After the simulation drained (final outcome).
    Quiesce,
}

impl CheckPhase {
    /// Short human name ("epoch 12" / "quiesce").
    pub fn describe(self) -> String {
        match self {
            CheckPhase::Epoch(e) => format!("epoch {e}"),
            CheckPhase::Quiesce => "quiesce".to_owned(),
        }
    }
}

/// A failed invariant check.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the invariant that failed.
    pub invariant: String,
    /// When it failed ("epoch N" / "quiesce").
    pub phase: String,
    /// What exactly went wrong.
    pub detail: String,
}

/// A system property that must hold under every fault schedule. `C` is the
/// evidence the check reads — live shard counters at epoch barriers, the
/// final outcome at quiesce — kept generic so the engine layer (this crate)
/// stays independent of the harness types that hold the evidence.
pub trait Invariant<C: ?Sized> {
    /// Stable name (used in violation reports and repro files).
    fn name(&self) -> &'static str;

    /// Check the invariant; `Err(detail)` reports a violation.
    fn check(&mut self, cx: &C, phase: CheckPhase) -> Result<(), String>;
}

/// An ordered set of invariants checked together.
pub struct InvariantRegistry<C: ?Sized> {
    invariants: Vec<Box<dyn Invariant<C>>>,
}

impl<C: ?Sized> Default for InvariantRegistry<C> {
    fn default() -> Self {
        InvariantRegistry { invariants: Vec::new() }
    }
}

impl<C: ?Sized> InvariantRegistry<C> {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an invariant (checked in registration order).
    pub fn register(&mut self, inv: Box<dyn Invariant<C>>) -> &mut Self {
        self.invariants.push(inv);
        self
    }

    /// Registered invariant names, in check order.
    pub fn names(&self) -> Vec<&'static str> {
        self.invariants.iter().map(|i| i.name()).collect()
    }

    /// Run every invariant against `cx`; returns all violations (empty =
    /// healthy).
    pub fn check(&mut self, cx: &C, phase: CheckPhase) -> Vec<Violation> {
        let mut out = Vec::new();
        for inv in &mut self.invariants {
            if let Err(detail) = inv.check(cx, phase) {
                out.push(Violation {
                    invariant: inv.name().to_owned(),
                    phase: phase.describe(),
                    detail,
                });
            }
        }
        out
    }

    /// Number of registered invariants.
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// Reduce a failing plan to a (locally) minimal reproducer. `still_fails`
/// re-runs the scenario under a candidate plan and reports whether the
/// invariant still breaks; every accepted reduction preserves failure, so
/// the result is failing by construction. Strategies, in order:
///
/// 1. **Greedy drop** — remove whole faults while the failure survives
///    (restarting after each success, so later faults get re-tried against
///    the smaller plan).
/// 2. **Window bisection** — for each surviving fault, try keeping only the
///    first or second half of its window, repeatedly.
/// 3. **Intensity halving** — shrink burst probabilities toward a 0.05
///    floor.
///
/// `max_runs` bounds the number of `still_fails` invocations (each is a
/// full simulation); shrinking stops early when the budget is exhausted.
pub fn shrink_plan(
    plan: &ChaosPlan,
    still_fails: &mut dyn FnMut(&ChaosPlan) -> bool,
    max_runs: usize,
) -> ChaosPlan {
    let mut best = plan.clone();
    let mut runs = 0usize;
    let mut try_candidate = |cand: &ChaosPlan, runs: &mut usize| -> bool {
        if *runs >= max_runs {
            return false;
        }
        *runs += 1;
        still_fails(cand)
    };

    // 1. Greedy fault drop, restarting on every success.
    'drop: loop {
        for i in 0..best.faults.len() {
            if best.faults.len() == 1 {
                break 'drop;
            }
            let mut cand = best.clone();
            cand.faults.remove(i);
            if try_candidate(&cand, &mut runs) {
                best = cand;
                continue 'drop;
            }
            if runs >= max_runs {
                break 'drop;
            }
        }
        break;
    }

    // 2. Window bisection per fault.
    for i in 0..best.faults.len() {
        loop {
            let f = &best.faults[i];
            let len = f.to.saturating_sub(f.from);
            if len <= SimDuration::from_micros(2) || runs >= max_runs {
                break;
            }
            let mid = f.from + SimDuration::from_micros(len.as_micros() / 2);
            let mut first = best.clone();
            first.faults[i].to = mid;
            if try_candidate(&first, &mut runs) {
                best = first;
                continue;
            }
            let mut second = best.clone();
            second.faults[i].from = mid;
            if try_candidate(&second, &mut runs) {
                best = second;
                continue;
            }
            break;
        }
    }

    // 3. Intensity halving for probabilistic bursts.
    for i in 0..best.faults.len() {
        loop {
            let f = &best.faults[i];
            let halvable = matches!(
                f.kind,
                FaultKind::Loss | FaultKind::Corrupt | FaultKind::Duplicate | FaultKind::Reorder
            ) && f.intensity > 0.1;
            if !halvable || runs >= max_runs {
                break;
            }
            let mut cand = best.clone();
            cand.faults[i].intensity = (f.intensity / 2.0).max(0.05);
            if try_candidate(&cand, &mut runs) {
                best = cand;
            } else {
                break;
            }
        }
    }

    best
}

// ---------------------------------------------------------------------------
// Minimal JSON (reader side; the writers above are hand-formatted)
// ---------------------------------------------------------------------------

/// A small hand-rolled JSON reader — the workspace is offline and has no
/// serde. Covers exactly what chaos plans and repro files need: objects,
/// arrays, strings (with the escapes our writers emit), numbers, booleans
/// and null.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Jv {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (integers included).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Jv>),
        /// An object, in source order.
        Obj(Vec<(String, Jv)>),
    }

    impl Jv {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Jv> {
            match self {
                Jv::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// Numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Jv::Num(x) => Some(*x),
                _ => None,
            }
        }

        /// Integer value (truncating), if this is a number.
        pub fn as_u64(&self) -> Option<u64> {
            self.as_f64().map(|x| x as u64)
        }

        /// String value, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Jv::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Array items, if this is an array.
        pub fn as_arr(&self) -> Option<&[Jv]> {
            match self {
                Jv::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Parse a JSON document. Errors carry a byte offset.
    pub fn parse(text: &str) -> Result<Jv, String> {
        let b = text.as_bytes();
        let mut pos = 0usize;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Jv, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => obj(b, pos),
            Some(b'[') => arr(b, pos),
            Some(b'"') => Ok(Jv::Str(string(b, pos)?)),
            Some(b't') => lit(b, pos, "true", Jv::Bool(true)),
            Some(b'f') => lit(b, pos, "false", Jv::Bool(false)),
            Some(b'n') => lit(b, pos, "null", Jv::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn lit(b: &[u8], pos: &mut usize, word: &str, v: Jv) -> Result<Jv, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {pos}"))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Jv, String> {
        let start = *pos;
        while *pos < b.len()
            && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Jv::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    let esc = *b.get(*pos).ok_or("unterminated escape")?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                    *pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let s = &b[*pos..];
                    let ch_len = utf8_len(s[0]);
                    let chunk = s.get(..ch_len).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    *pos += ch_len;
                }
            }
        }
        Err("unterminated string".to_owned())
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }

    fn arr(b: &[u8], pos: &mut usize) -> Result<Jv, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Jv::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Jv::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {pos}")),
            }
        }
    }

    fn obj(b: &[u8], pos: &mut usize) -> Result<Jv, String> {
        expect(b, pos, b'{')?;
        let mut pairs = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Jv::Obj(pairs));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            pairs.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Jv::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::sim::Simulator;
    use crate::time::SimTime;

    const MS: u64 = 1_000;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_micros(x * MS)
    }

    /// Fires `n` pings at `every` intervals; records pong arrival times.
    struct Pinger {
        peer: NodeId,
        every: SimDuration,
        left: u32,
        pongs: Vec<SimTime>,
    }
    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
            if msg.kind == "pong" {
                self.pongs.push(ctx.now());
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
            if self.left == 0 {
                return;
            }
            self.left -= 1;
            ctx.send(self.peer, Message::new("ping", b"x".to_vec()));
            if self.left > 0 {
                ctx.set_timer(self.every, 0);
            }
        }
    }

    /// Echoes pings; counts deliveries.
    struct Echo {
        seen: u32,
    }
    impl Node for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
            if msg.kind == "ping" {
                self.seen += 1;
                ctx.send(from, Message::new("pong", msg.body));
            }
        }
    }

    fn ping_sim(plan: ChaosPlan) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(7);
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        let ping = sim.add_node(Box::new(Pinger {
            peer: echo,
            every: ms(100),
            left: 20,
            pongs: Vec::new(),
        }));
        sim.set_label(echo, 100);
        sim.set_label(ping, 101);
        let inj = sim.add_node(Box::new(ChaosInjector::new(plan)));
        sim.set_label(inj, 999);
        sim.connect(ping, echo, LinkSpec::ideal());
        sim.run_until_idle();
        (sim, ping, echo)
    }

    #[test]
    fn partition_fault_cuts_and_heals() {
        // Pings at 0,100,...,1900ms; cut 450–850ms swallows pings 5..=8.
        let plan =
            ChaosPlan::new().with(Fault::partition(100, 101, ms(450), ms(850)));
        let (sim, _ping, echo) = ping_sim(plan);
        assert_eq!(sim.node_ref::<Echo>(echo).unwrap().seen, 16);
    }

    #[test]
    fn overlapping_partitions_heal_at_max_end() {
        // Two overlapping cuts: 300–600 and 500–1050. A last-write-wins
        // implementation would heal at 600; the refcount keeps the link down
        // through 1050, so pings 3..=10 all drop.
        let plan = ChaosPlan::new()
            .with(Fault::partition(100, 101, ms(300), ms(600)))
            .with(Fault::partition(100, 101, ms(500), ms(1050)));
        let (sim, _ping, echo) = ping_sim(plan);
        assert_eq!(sim.node_ref::<Echo>(echo).unwrap().seen, 12);
    }

    #[test]
    fn duplicate_burst_delivers_copies() {
        let plan = ChaosPlan::new().with(Fault::duplicate(
            101,
            100,
            SimDuration::ZERO,
            ms(10_000),
            1.0,
            ms(5),
        ));
        let (sim, _ping, echo) = ping_sim(plan);
        // Every ping duplicated: echo sees 40. (Pongs duplicate too — the
        // pinger just records extras.)
        assert_eq!(sim.node_ref::<Echo>(echo).unwrap().seen, 40);
    }

    #[test]
    fn loss_burst_drops_everything_at_p1() {
        let plan = ChaosPlan::new().with(Fault::loss(
            101,
            100,
            SimDuration::ZERO,
            ms(10_000),
            1.0,
        ));
        let (sim, _ping, echo) = ping_sim(plan);
        assert_eq!(sim.node_ref::<Echo>(echo).unwrap().seen, 0);
        assert!(sim.counter_total("chaos.loss_drops") >= 20.0);
    }

    #[test]
    fn corrupt_burst_counts_separately_from_loss() {
        let plan = ChaosPlan::new().with(Fault::corrupt(
            101,
            100,
            SimDuration::ZERO,
            ms(10_000),
            1.0,
        ));
        let (sim, _ping, echo) = ping_sim(plan);
        assert_eq!(sim.node_ref::<Echo>(echo).unwrap().seen, 0);
        assert!(sim.counter_total("chaos.corrupt_drops") >= 20.0);
        assert_eq!(sim.counter_total("chaos.loss_drops"), 0.0);
    }

    #[test]
    fn inert_plan_changes_nothing_but_seq_numbers() {
        // All-zero burst probabilities: the overlay installs but never
        // draws, so pong arrival times are identical to a chaos-free run.
        let calm = {
            let mut sim = Simulator::new(7);
            let echo = sim.add_node(Box::new(Echo { seen: 0 }));
            let ping = sim.add_node(Box::new(Pinger {
                peer: echo,
                every: ms(100),
                left: 20,
                pongs: Vec::new(),
            }));
            sim.set_label(echo, 100);
            sim.set_label(ping, 101);
            sim.connect(ping, echo, LinkSpec::wireless_gprs());
            sim.run_until_idle();
            sim.node_ref::<Pinger>(ping).unwrap().pongs.clone()
        };
        let chaotic = {
            let mut sim = Simulator::new(7);
            let echo = sim.add_node(Box::new(Echo { seen: 0 }));
            let ping = sim.add_node(Box::new(Pinger {
                peer: echo,
                every: ms(100),
                left: 20,
                pongs: Vec::new(),
            }));
            sim.set_label(echo, 100);
            sim.set_label(ping, 101);
            let plan = ChaosPlan::new()
                .with(Fault::loss(101, 100, SimDuration::ZERO, ms(10_000), 0.0))
                .with(Fault::duplicate(101, 100, SimDuration::ZERO, ms(10_000), 0.0, ms(5)))
                .with(Fault::reorder(100, 101, SimDuration::ZERO, ms(10_000), 0.0, ms(5)))
                .with(Fault::clock_skew(101, ms(100), ms(200), 1.0));
            assert!(plan.is_inert());
            let inj = sim.add_node(Box::new(ChaosInjector::new(plan)));
            sim.set_label(inj, 999);
            sim.connect(ping, echo, LinkSpec::wireless_gprs());
            sim.run_until_idle();
            sim.node_ref::<Pinger>(ping).unwrap().pongs.clone()
        };
        assert_eq!(calm, chaotic);
    }

    #[test]
    fn crash_window_drops_deliveries_and_parks_timers() {
        // Crash the echo node across 450–850ms: pings 5..=8 are lost (the
        // node is down), but the pinger's own timers keep running.
        let plan = ChaosPlan::new().with(Fault::crash(100, ms(450), ms(850)));
        let (sim, _ping, echo) = ping_sim(plan);
        assert_eq!(sim.node_ref::<Echo>(echo).unwrap().seen, 16);
        assert_eq!(sim.counter_total("chaos.crash_drops"), 4.0);
    }

    #[test]
    fn crashed_node_timers_fire_after_resume() {
        // A node with a 100ms periodic timer crashed 250–900ms: its parked
        // ticks fire at resume, and ticking continues after.
        struct Ticker {
            ticks: Vec<SimTime>,
        }
        impl Node for Ticker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(ms(100), 0);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _msg: Message) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                self.ticks.push(ctx.now());
                if self.ticks.len() < 10 {
                    ctx.set_timer(ms(100), 0);
                }
            }
        }
        let mut sim = Simulator::new(1);
        let t = sim.add_node(Box::new(Ticker { ticks: Vec::new() }));
        sim.set_label(t, 50);
        let inj = sim
            .add_node(Box::new(ChaosInjector::new(
                ChaosPlan::new().with(Fault::crash(50, ms(250), ms(900))),
            )));
        sim.set_label(inj, 999);
        sim.run_until_idle();
        let ticks = &sim.node_ref::<Ticker>(t).unwrap().ticks;
        assert_eq!(ticks.len(), 10);
        // Ticks 1,2 fire on time; tick 3 (due 300ms) parks until 900ms.
        assert_eq!(ticks[1], SimTime(200 * MS));
        assert_eq!(ticks[2], SimTime(900 * MS));
        assert_eq!(ticks[3], SimTime(1_000 * MS));
    }

    #[test]
    fn clock_skew_stretches_timers_inside_the_window() {
        struct Beeper {
            at: Vec<SimTime>,
        }
        impl Node for Beeper {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(ms(100), 0);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _msg: Message) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                self.at.push(ctx.now());
                if self.at.len() < 20 {
                    ctx.set_timer(ms(100), 0);
                }
            }
        }
        let mut sim = Simulator::new(1);
        let b = sim.add_node(Box::new(Beeper { at: Vec::new() }));
        sim.set_label(b, 60);
        let inj = sim.add_node(Box::new(ChaosInjector::new(
            ChaosPlan::new().with(Fault::clock_skew(60, ms(150), ms(1_000), 2.0)),
        )));
        sim.set_label(inj, 999);
        sim.run_until_idle();
        let at = &sim.node_ref::<Beeper>(b).unwrap().at;
        // Ticks armed before the ramp starts (at 150ms) run unskewed; the
        // tick armed at 200ms stretches past 100ms. After the window closes
        // the factor snaps back and intervals return to exactly 100ms.
        assert_eq!(at[0], SimTime(100 * MS));
        assert_eq!(at[1], SimTime(200 * MS));
        assert!(at[2].since(at[1]) > ms(100), "skewed interval: {:?}", at[2].since(at[1]));
        let last = at[at.len() - 1].since(at[at.len() - 2]);
        assert_eq!(last, ms(100));
    }

    #[test]
    fn golden_plan_round_trips() {
        let plan = ChaosPlan::new()
            .with(Fault::partition(12, 16, ms(9_500), ms(11_900)))
            .with(Fault::duplicate(20, 13, ms(0), ms(60_000), 0.75, ms(40)))
            .with(Fault::clock_skew(18, ms(1_000), ms(2_000), 1.5));
        let text = plan.render();
        // Golden: the exact serialized form is part of the repro-file
        // contract (a future parser change must keep reading this).
        let golden = "{\"faults\":[\
            {\"kind\":\"partition\",\"a\":12,\"b\":16,\"from_us\":9500000,\"to_us\":11900000,\"intensity\":0.0,\"window_us\":0},\
            {\"kind\":\"duplicate\",\"a\":20,\"b\":13,\"from_us\":0,\"to_us\":60000000,\"intensity\":0.75,\"window_us\":40000},\
            {\"kind\":\"clock_skew\",\"a\":18,\"b\":0,\"from_us\":1000000,\"to_us\":2000000,\"intensity\":1.5,\"window_us\":0}]}";
        assert_eq!(text, golden);
        assert_eq!(ChaosPlan::parse(&text).unwrap(), plan);
    }

    #[test]
    fn registry_reports_violations_with_phase() {
        struct AlwaysBad;
        impl Invariant<u32> for AlwaysBad {
            fn name(&self) -> &'static str {
                "always-bad"
            }
            fn check(&mut self, cx: &u32, _phase: CheckPhase) -> Result<(), String> {
                Err(format!("cx was {cx}"))
            }
        }
        struct NeverBad;
        impl Invariant<u32> for NeverBad {
            fn name(&self) -> &'static str {
                "never-bad"
            }
            fn check(&mut self, _cx: &u32, _phase: CheckPhase) -> Result<(), String> {
                Ok(())
            }
        }
        let mut reg: InvariantRegistry<u32> = InvariantRegistry::new();
        reg.register(Box::new(AlwaysBad)).register(Box::new(NeverBad));
        let v = reg.check(&7, CheckPhase::Epoch(3));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "always-bad");
        assert_eq!(v[0].phase, "epoch 3");
        assert!(reg.check(&7, CheckPhase::Quiesce)[0].phase == "quiesce");
    }

    #[test]
    fn shrink_drops_decoys_and_bisects_windows() {
        // Oracle: fails iff some duplicate fault with p ≥ 0.5 covers t=30s.
        let mut oracle = |p: &ChaosPlan| {
            p.faults.iter().any(|f| {
                f.kind == FaultKind::Duplicate
                    && f.intensity >= 0.5
                    && f.from <= ms(30_000)
                    && f.to >= ms(30_000)
            })
        };
        let plan = ChaosPlan::new()
            .with(Fault::partition(1, 2, ms(5_000), ms(6_000)))
            .with(Fault::loss(3, 4, ms(0), ms(50_000), 0.3))
            .with(Fault::duplicate(5, 6, ms(0), ms(60_000), 1.0, ms(40)))
            .with(Fault::crash(7, ms(10_000), ms(11_000)))
            .with(Fault::clock_skew(8, ms(0), ms(1_000), 2.0));
        assert!(oracle(&plan));
        let small = shrink_plan(&plan, &mut oracle, 200);
        assert!(oracle(&small), "shrunk plan must still fail");
        assert_eq!(small.faults.len(), 1);
        let f = &small.faults[0];
        assert_eq!(f.kind, FaultKind::Duplicate);
        // The window bisected down around the 30s point.
        assert!(f.to.saturating_sub(f.from) < ms(15_000));
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        /// Any plan survives a render→parse round trip.
        #[test]
        fn plan_json_round_trips(spec in proptest::collection::vec(
            ((0u8..8, 0u64..64, 0u64..64),
             (0u64..100_000u64, 0u64..100_000u64, 0u32..101u32, 0u64..5_000u64)),
            0..12,
        )) {
            let mut plan = ChaosPlan::new();
            for ((k, a, b), (t0, t1, p, w)) in spec {
                let kind = FaultKind::all()[k as usize];
                let (from, to) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
                plan.faults.push(Fault {
                    kind,
                    a,
                    b,
                    from: SimDuration::from_micros(from),
                    to: SimDuration::from_micros(to),
                    intensity: f64::from(p) / 100.0,
                    window: SimDuration::from_micros(w),
                });
            }
            let parsed = ChaosPlan::parse(&plan.render()).unwrap();
            proptest::prop_assert_eq!(parsed, plan);
        }

        /// Shrinking always yields a plan that still fails its oracle, and
        /// never a larger one.
        #[test]
        fn shrinking_preserves_failure(
            n_decoys in 0usize..6,
            p in 50u32..101u32,
            t0 in 0u64..20_000u64,
            span in 15_000u64..50_000u64,
        ) {
            // The "invariant" fails iff total duplicate probability mass
            // covering t=25s reaches 0.5.
            let probe = ms(25_000);
            let mut oracle = move |plan: &ChaosPlan| {
                let mass: f64 = plan
                    .faults
                    .iter()
                    .filter(|f| {
                        f.kind == FaultKind::Duplicate && f.from <= probe && f.to >= probe
                    })
                    .map(|f| f.intensity)
                    .sum();
                mass >= 0.5
            };
            let mut plan = ChaosPlan::new().with(Fault::duplicate(
                1, 2, ms(t0), ms(t0 + span.max(25_500 - t0.min(25_500))), // covers 25s
                f64::from(p) / 100.0, ms(40),
            ));
            // Make sure the trigger fault really covers the probe point.
            plan.faults[0].from = ms(t0.min(24_000));
            plan.faults[0].to = ms(26_000 + span);
            for i in 0..n_decoys {
                plan.faults.push(Fault::partition(
                    10 + i as u64, 20 + i as u64, ms(1_000), ms(2_000),
                ));
            }
            proptest::prop_assert!(oracle(&plan));
            let small = shrink_plan(&plan, &mut oracle, 300);
            proptest::prop_assert!(oracle(&small));
            proptest::prop_assert!(small.faults.len() <= plan.faults.len());
            proptest::prop_assert_eq!(small.faults.len(), 1);
        }
    }
}
