//! Fleet-scale scrape federation.
//!
//! One [`SloMonitor`](crate::slo::SloMonitor) per cell is cheap; an operator
//! fleet has hundreds of cells, and somebody has to watch the watchers. This
//! module models that layer the same way Prometheus federation does it in
//! production: a central [`FederationScraper`] node scrapes each cell
//! monitor's `GET /metrics` over the simulated WAN, merges the per-cell
//! snapshots into a fleet-level rollup ([`FederationRollup`]), and feeds the
//! rollup to an ordinary [`SloEngine`] so fleet-wide rules (staleness
//! bounds, burn rates over federated counters) fire from federated data.
//!
//! The interesting physics is the fan-in: hundreds of scrapes per round
//! share one WAN ingress, so the scraper dispatches targets in *batches*
//! (`batch` targets per `batch_spacing` tick) under a bounded in-flight
//! window (`max_inflight` outstanding scrapes). Both knobs trade congestion
//! against *staleness* — how old each cell's data is when the fleet rules
//! run — and the scraper accounts for that trade explicitly:
//!
//! * `federation.staleness` — histogram of per-cell snapshot age at each
//!   round's evaluation (also re-injected as a stage, so p99 rules apply);
//! * `federation.scrape_inflight` — gauge of outstanding scrapes;
//! * `federation.dropped_series` — counter of series excluded from a rollup
//!   because their cell's snapshot aged past `stale_after`.
//!
//! With `delta: true` (the default) the scraper rides the exposition layer's
//! epoch protocol: after a first full snapshot per cell it asks
//! `GET /metrics?since=<epoch>` and receives only the series that changed,
//! applying them in O(changed) via [`FederationRollup::apply_delta`]. Every
//! `resync_every`-th round is a full-snapshot resync, and an epoch gap in
//! either direction (server fell back to full, or a delta arrives against a
//! base the scraper no longer holds) degrades safely to a full refetch —
//! counted in `federation.resyncs`, never dropped. The merged rollup is
//! byte-identical to full-snapshot mode at equal scrape counts.
//!
//! Determinism: the scraper's links carry their own per-link RNG streams
//! (keyed by node labels, like every link), its timers and HTTP req-ids are
//! node-local, and cell monitors serve their federated view from cell-local
//! state only — so enabling federation never perturbs protocol traffic, and
//! a sharded fleet federates byte-identically at every shard count.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::http::{HttpClient, HttpRequest, TimerOutcome};
use crate::message::Message;
use crate::obs::Histogram;
use crate::paging::{page_fire, page_resolve};
use crate::sim::{Ctx, Node, NodeId};
use crate::slo::{SloEngine, SloReport, SloRule};
use crate::telemetry::{parse_epoch_header, parse_prom, TelemetrySnapshot, PATH_METRICS};
use crate::time::{SimDuration, SimTime};

/// Synthetic gauge the scraper injects before fleet evaluation: the largest
/// per-cell snapshot age (µs) seen at this round's rollup.
pub const KEY_FED_STALENESS_MAX: &str = "federation.staleness_max";
/// Synthetic stage the scraper injects: per-cell snapshot age (µs) at each
/// round's rollup, cumulative across rounds (rules window it by diffing).
pub const STAGE_FED_STALENESS: &str = "federation.staleness";

/// The fleet rule set evaluated against each round's federated rollup. All
/// signals are derived from federated (cell-local) series plus the scraper's
/// own staleness synthetics, so verdicts are shard-count invariant.
pub fn default_federation_rules() -> Vec<SloRule> {
    vec![
        // Freshness ceiling with resolve hysteresis: fire when any cell's
        // data ages past 30 s, resolve only once back under 15 s — a flapping
        // scrape plane must not flap the alert.
        SloRule::gauge("fed-staleness-max", KEY_FED_STALENESS_MAX, 30_000_000.0)
            .with_resolve(15_000_000.0),
        // Tail freshness across the fleet, windowed per round.
        SloRule::p99("fed-staleness-p99", STAGE_FED_STALENESS, 30_000_000.0),
        // Fleet-wide probe burn over federated monitor counters: both the
        // 1- and 3-round windows must burn >50% before this pages.
        SloRule::burn_rate("fleet-probe-burn", "slo.probe_failures", "slo.scrapes_ok", 1, 3, 0.5),
        // Fleet-wide HTTP error budget over federated gateway/MAS counters.
        SloRule::error_ratio("fleet-error-ratio", "http.gave_up", "msgs_sent", 0.05),
    ]
}

/// Sum `from`'s counters and gauges into `into` and merge its stage
/// histograms — the primitive both the cell monitors (merging their targets
/// into a cell view) and the fleet rollup (merging cells) are built on.
/// Keys are accumulated by name, so the result only depends on the multiset
/// of inputs, not their order.
pub fn merge_snapshot(into: &mut TelemetrySnapshot, from: &TelemetrySnapshot) {
    let add = |dst: &mut Vec<(String, f64)>, src: &[(String, f64)]| {
        for (k, v) in src {
            match dst.binary_search_by(|(dk, _)| dk.as_str().cmp(k)) {
                Ok(i) => dst[i].1 += v,
                Err(i) => dst.insert(i, (k.clone(), *v)),
            }
        }
    };
    add(&mut into.counters, &from.counters);
    add(&mut into.gauges, &from.gauges);
    for (name, h) in &from.stages {
        match into.stages.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => into.stages[i].1.merge(h),
            Err(i) => into.stages.insert(i, (name.clone(), h.clone())),
        }
    }
    // Exemplars merge per (stage, bucket): the newest timestamp wins, with
    // the larger trace id as the deterministic tie-break — order-insensitive
    // like the scalar fold above.
    for (name, rows) in &from.exemplars {
        let slot = match into.exemplars.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => &mut into.exemplars[i].1,
            Err(i) => {
                into.exemplars.insert(i, (name.clone(), Vec::new()));
                &mut into.exemplars[i].1
            }
        };
        for &(bucket, e) in rows {
            match slot.binary_search_by(|(b, _)| b.cmp(&bucket)) {
                Ok(i) => {
                    let cur = &mut slot[i].1;
                    if (e.ts_us, e.trace) > (cur.ts_us, cur.trace) {
                        *cur = e;
                    }
                }
                Err(i) => slot.insert(i, (bucket, e)),
            }
        }
    }
}

/// The fleet rollup: the latest accepted snapshot per cell instance, keyed
/// by instance name. Upserts are idempotent (re-inserting a cell replaces
/// its slot) and [`FederationRollup::merged`] folds cells in instance order,
/// so the merged view is insensitive to scrape-arrival order — the property
/// the proptest below pins down.
#[derive(Debug, Clone, Default)]
pub struct FederationRollup {
    cells: BTreeMap<String, (SimTime, TelemetrySnapshot)>,
}

impl FederationRollup {
    /// Empty rollup.
    pub fn new() -> FederationRollup {
        FederationRollup::default()
    }

    /// Install `snap` as cell `instance`'s latest view, scraped at `at`.
    pub fn upsert(&mut self, instance: &str, at: SimTime, snap: TelemetrySnapshot) {
        self.cells.insert(instance.to_owned(), (at, snap));
    }

    /// Cells currently held.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cell has reported yet.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Age of cell `instance`'s snapshot at `now` (`None` if never seen).
    pub fn staleness(&self, instance: &str, now: SimTime) -> Option<SimDuration> {
        self.cells.get(instance).map(|(at, _)| now.since(*at))
    }

    /// Merge every cell fresher than `stale_after` (as of `now`) into one
    /// fleet snapshot. Returns the merged view plus the number of *series*
    /// (counters + gauges + stages) dropped from cells that aged out.
    pub fn merged_fresh(
        &self,
        now: SimTime,
        stale_after: SimDuration,
    ) -> (TelemetrySnapshot, u64) {
        let mut out = TelemetrySnapshot::default();
        let mut dropped = 0u64;
        for (at, snap) in self.cells.values() {
            if now.since(*at) > stale_after {
                dropped += (snap.counters.len() + snap.gauges.len() + snap.stages.len()) as u64;
                continue;
            }
            merge_snapshot(&mut out, snap);
        }
        (out, dropped)
    }

    /// Merge every cell, unconditionally.
    pub fn merged(&self) -> TelemetrySnapshot {
        self.merged_fresh(SimTime(u64::MAX), SimDuration::from_micros(u64::MAX)).0
    }

    /// Apply a delta body to cell `instance`'s held snapshot in O(changed
    /// series): each delta series replaces (or inserts) its slot by key,
    /// untouched series keep their previous values. Returns `false` — and
    /// leaves the cell untouched — when no base snapshot is held, in which
    /// case the caller must fall back to a full scrape.
    pub fn apply_delta(&mut self, instance: &str, at: SimTime, delta: &TelemetrySnapshot) -> bool {
        match self.cells.get_mut(instance) {
            Some((held_at, snap)) => {
                snap.apply_delta(delta);
                *held_at = at;
                true
            }
            None => false,
        }
    }
}

/// Federation scraper configuration.
#[derive(Debug, Clone)]
pub struct FederationSpec {
    /// Round cadence: how often the full target set is re-scraped.
    pub cadence: SimDuration,
    /// Total rounds — bounded, so simulations always drain.
    pub rounds: u32,
    /// Per-scrape retransmission timeout.
    pub rto: SimDuration,
    /// Retransmissions before a scrape counts as failed.
    pub retries: u32,
    /// Targets dispatched per fan-in batch tick.
    pub batch: usize,
    /// Delay between fan-in batch ticks within a round.
    pub batch_spacing: SimDuration,
    /// Bounded in-flight window: outstanding scrapes never exceed this.
    pub max_inflight: usize,
    /// Snapshots older than this are excluded from rollups (their series
    /// count toward `federation.dropped_series`).
    pub stale_after: SimDuration,
    /// Scrape cells with `?since=<epoch>` delta requests once a base
    /// snapshot is held; `false` forces a full snapshot every round.
    pub delta: bool,
    /// In delta mode, every Nth round is a full-snapshot resync round
    /// (round 0 is always full).
    pub resync_every: u32,
    /// Fleet rule set evaluated against each round's rollup.
    pub rules: Vec<SloRule>,
    /// Paging gateway to notify on fleet alert edges, if any.
    pub pager: Option<NodeId>,
}

impl Default for FederationSpec {
    fn default() -> FederationSpec {
        FederationSpec {
            cadence: SimDuration::from_secs(10),
            rounds: 3,
            rto: SimDuration::from_secs(2),
            retries: 1,
            batch: 16,
            batch_spacing: SimDuration::from_millis(200),
            max_inflight: 8,
            stale_after: SimDuration::from_secs(30),
            delta: true,
            resync_every: 8,
            rules: Vec::new(),
            pager: None,
        }
    }
}

/// Aggregate outcome of a federation run, for reports.
#[derive(Debug, Clone)]
pub struct FederationReport {
    /// Completed scrape rounds.
    pub rounds: u64,
    /// Successful cell scrapes.
    pub scrapes_ok: u64,
    /// Scrapes that exhausted their retries or failed to parse.
    pub scrape_failures: u64,
    /// Series excluded from rollups because their cell aged out.
    pub dropped_series: u64,
    /// High-water mark of outstanding scrapes.
    pub peak_inflight: usize,
    /// Cells that reported at least once.
    pub cells: usize,
    /// Delta scrapes answered with a full body (epoch gap) plus defensive
    /// base-mismatch refetches.
    pub resyncs: u64,
    /// Scrapes served as deltas (epoch header with a `base=`).
    pub delta_scrapes: u64,
    /// Scrapes served as full snapshots.
    pub full_scrapes: u64,
    /// Total scrape body bytes received.
    pub scraped_bytes: u64,
    /// Wall-clock nanoseconds spent parsing and applying scrape bodies
    /// (report-only: never feeds back into simulation state).
    pub ingest_nanos: u64,
    /// Per-cell snapshot age at each round's evaluation.
    pub staleness: Histogram,
    /// Scrape round-trip times (from first transmission).
    pub rtt: Histogram,
    /// Fleet rule digests, in rule order.
    pub slo: Vec<SloReport>,
    /// Fleet rules still breached when the sim drained.
    pub breached: usize,
}

/// Timer tags (below `HTTP_TIMER_BASE`, so the HTTP client's tags pass
/// through untouched).
const TAG_ROUND: u64 = 1;
const TAG_BATCH: u64 = 2;

/// The central scraper node. See the module docs for the protocol.
#[derive(Debug)]
pub struct FederationScraper {
    spec: FederationSpec,
    /// `(node, instance)` per target cell monitor, in dispatch order.
    targets: Vec<(NodeId, String)>,
    /// Last successful scrape per target (for staleness accounting).
    last_ok: Vec<Option<SimTime>>,
    /// Last epoch seen per target (the `since=` base for delta scrapes).
    last_epoch: Vec<Option<u64>>,
    /// True while the current round scrapes full snapshots.
    full_round: bool,
    http: HttpClient,
    /// req_id → (target index, first-transmission time, asked-for-delta).
    pending: HashMap<u64, (usize, SimTime, bool)>,
    rollup: FederationRollup,
    engine: SloEngine,
    /// Targets not yet dispatched this round.
    queue: VecDeque<usize>,
    /// Targets the batch clock has released for dispatch this round.
    budget: usize,
    /// Targets dispatched this round.
    issued: usize,
    inflight: usize,
    rounds_started: u32,
    round_pending: bool,
    /// rule name → (episode trace id, open `slo.alert` span id).
    episodes: HashMap<String, (u64, u32)>,
    /// Cumulative staleness histogram (µs), one record per cell per round.
    staleness: Histogram,
    /// Cumulative scrape RTT histogram (µs).
    rtt: Histogram,
    /// Completed rounds.
    pub rounds_done: u64,
    /// Successful scrapes.
    pub scrapes_ok: u64,
    /// Failed scrapes (gave up, error status, or unparseable body).
    pub scrape_failures: u64,
    /// Series dropped from rollups for staleness.
    pub dropped_series: u64,
    /// In-flight high-water mark.
    pub peak_inflight: usize,
    /// Delta asks answered full (epoch gap) plus base-mismatch refetches.
    pub resyncs: u64,
    /// Scrapes served as deltas.
    pub delta_scrapes: u64,
    /// Scrapes served as full snapshots.
    pub full_scrapes: u64,
    /// Total scrape body bytes received.
    pub scraped_bytes: u64,
    /// Wall-clock nanos spent parsing/applying bodies (report-only).
    pub ingest_nanos: u64,
}

impl FederationScraper {
    /// Scraper over `(cell monitor node, instance name)` pairs.
    pub fn new(spec: FederationSpec, targets: Vec<(NodeId, String)>) -> FederationScraper {
        let mut http = HttpClient::new();
        http.timeout = spec.rto;
        http.max_retries = spec.retries;
        let engine = SloEngine::new(spec.rules.clone());
        let last_ok = vec![None; targets.len()];
        let last_epoch = vec![None; targets.len()];
        FederationScraper {
            spec,
            targets,
            last_ok,
            last_epoch,
            full_round: true,
            http,
            pending: HashMap::new(),
            rollup: FederationRollup::new(),
            engine,
            queue: VecDeque::new(),
            budget: 0,
            issued: 0,
            inflight: 0,
            rounds_started: 0,
            round_pending: false,
            episodes: HashMap::new(),
            staleness: Histogram::new(),
            rtt: Histogram::new(),
            rounds_done: 0,
            scrapes_ok: 0,
            scrape_failures: 0,
            dropped_series: 0,
            peak_inflight: 0,
            resyncs: 0,
            delta_scrapes: 0,
            full_scrapes: 0,
            scraped_bytes: 0,
            ingest_nanos: 0,
        }
    }

    /// Aggregate outcome for reports.
    pub fn report(&self) -> FederationReport {
        FederationReport {
            rounds: self.rounds_done,
            scrapes_ok: self.scrapes_ok,
            scrape_failures: self.scrape_failures,
            dropped_series: self.dropped_series,
            peak_inflight: self.peak_inflight,
            resyncs: self.resyncs,
            delta_scrapes: self.delta_scrapes,
            full_scrapes: self.full_scrapes,
            scraped_bytes: self.scraped_bytes,
            ingest_nanos: self.ingest_nanos,
            cells: self.rollup.len(),
            staleness: self.staleness.clone(),
            rtt: self.rtt.clone(),
            slo: self.engine.reports(),
            breached: self.engine.breached(),
        }
    }

    /// The current fleet rollup (latest snapshot per cell).
    pub fn rollup(&self) -> &FederationRollup {
        &self.rollup
    }

    fn round_active(&self) -> bool {
        self.inflight > 0 || !self.queue.is_empty()
    }

    fn start_round(&mut self, ctx: &mut Ctx<'_>) {
        self.full_round = !self.spec.delta
            || self.rounds_done.is_multiple_of(u64::from(self.spec.resync_every.max(1)));
        self.queue = (0..self.targets.len()).collect();
        self.budget = self.spec.batch.max(1).min(self.targets.len());
        self.issued = 0;
        self.pump(ctx);
        if self.budget < self.targets.len() {
            ctx.set_timer(self.spec.batch_spacing, TAG_BATCH);
        }
    }

    /// Dispatch queued targets while both the fan-in budget and the
    /// in-flight window allow it.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        while self.issued < self.budget
            && self.inflight < self.spec.max_inflight.max(1)
            && !self.queue.is_empty()
        {
            let tidx = self.queue.pop_front().expect("non-empty queue");
            let node = self.targets[tidx].0;
            let since = if self.full_round { None } else { self.last_epoch[tidx] };
            let req = match since {
                Some(e) => HttpRequest::new("GET", format!("{PATH_METRICS}?since={e}"), Vec::new()),
                None => HttpRequest::new("GET", PATH_METRICS, Vec::new()),
            };
            let id = self.http.send(ctx, node, req);
            self.pending.insert(id, (tidx, ctx.now(), since.is_some()));
            self.issued += 1;
            self.inflight += 1;
            self.peak_inflight = self.peak_inflight.max(self.inflight);
        }
        ctx.metrics().set_gauge("federation.scrape_inflight", self.inflight as f64);
    }

    /// One scrape finished (ok or not): free its window slot, refill, and
    /// close out the round when the last one lands.
    fn complete(&mut self, ctx: &mut Ctx<'_>) {
        self.inflight -= 1;
        self.pump(ctx);
        if !self.round_active() {
            self.finish_round(ctx);
            if self.round_pending {
                self.round_pending = false;
                self.start_round(ctx);
            }
        }
    }

    /// Round epilogue: account staleness, roll up the fresh cells, and run
    /// the fleet rules over the merged view.
    fn finish_round(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let mut max_staleness = 0u64;
        for last in &self.last_ok {
            // A cell that never reported is as stale as the run is old.
            let age = last.map_or(now.0, |at| now.since(at).0);
            self.staleness.record(age);
            max_staleness = max_staleness.max(age);
        }
        let (mut merged, dropped) = self.rollup.merged_fresh(now, self.spec.stale_after);
        if dropped > 0 {
            self.dropped_series += dropped;
            ctx.metrics().bump("federation.dropped_series", dropped as f64);
        }
        ctx.metrics().set_gauge(KEY_FED_STALENESS_MAX, max_staleness as f64);
        merged.gauges.push((KEY_FED_STALENESS_MAX.to_owned(), max_staleness as f64));
        merged.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        merged.stages.push((STAGE_FED_STALENESS.to_owned(), self.staleness.clone()));
        merged.stages.sort_by(|a, b| a.0.cmp(&b.0));

        let transitions = self.engine.evaluate(&merged);
        self.rounds_done += 1;
        ctx.metrics().bump("federation.rounds", 1.0);
        for tr in transitions {
            if tr.fired {
                let trace = ctx.obs_new_trace();
                let span = ctx.span_begin(trace, 0, "slo.alert");
                self.episodes.insert(tr.rule.clone(), (trace, span));
                ctx.metrics().bump("federation.alerts_fired", 1.0);
                ctx.obs_alert(&tr.rule, "fleet", true, tr.value, tr.limit, trace, tr.exemplar);
                if let Some(pager) = self.spec.pager {
                    ctx.send(
                        pager,
                        page_fire(&tr.rule, "fleet", tr.value, tr.limit, trace, tr.exemplar),
                    );
                }
            } else {
                let (trace, span) = self.episodes.remove(&tr.rule).unwrap_or((0, 0));
                ctx.span_end(span);
                ctx.metrics().bump("federation.alerts_resolved", 1.0);
                ctx.obs_alert(&tr.rule, "fleet", false, tr.value, tr.limit, trace, 0);
                if let Some(pager) = self.spec.pager {
                    ctx.send(pager, page_resolve(&tr.rule, "fleet"));
                }
            }
        }
    }
}

impl Node for FederationScraper {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.spec.rounds > 0 && !self.targets.is_empty() {
            ctx.set_timer(self.spec.cadence, TAG_ROUND);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
        let Some(resp) = self.http.on_response(ctx, &msg) else { return };
        let Some((tidx, sent, asked_delta)) = self.pending.remove(&resp.req_id) else { return };
        self.scraped_bytes += resp.body.len() as u64;
        let body = if resp.status.is_success() {
            std::str::from_utf8(&resp.body).ok()
        } else {
            None
        };
        // Parse + apply under a wall clock: this is the merge cost the delta
        // path exists to shrink. The measurement is report-only and never
        // feeds back into simulated time or digests.
        let ingest_started = std::time::Instant::now();
        let mut ok = false;
        if let Some(text) = body {
            let header = parse_epoch_header(text);
            let is_delta = matches!(header, Some(h) if h.base.is_some());
            if is_delta {
                let h = header.expect("checked above");
                let instance = self.targets[tidx].1.clone();
                let applied = h.base == self.last_epoch[tidx]
                    && self.rollup.apply_delta(&instance, ctx.now(), &parse_prom(text));
                if applied {
                    self.last_epoch[tidx] = Some(h.epoch);
                    self.delta_scrapes += 1;
                    ok = true;
                } else {
                    // Base mismatch (or no held snapshot): the delta is
                    // unusable. Discard it and refetch the full snapshot
                    // under the same window slot — the round stays open and
                    // the RTT clock keeps running from the first send.
                    self.ingest_nanos += ingest_started.elapsed().as_nanos() as u64;
                    self.resyncs += 1;
                    ctx.metrics().bump("federation.resyncs", 1.0);
                    let node = self.targets[tidx].0;
                    let refetch = HttpRequest::new("GET", PATH_METRICS, Vec::new());
                    let id = self.http.send(ctx, node, refetch);
                    self.pending.insert(id, (tidx, sent, false));
                    return;
                }
            } else {
                // Full snapshot (epoch header present or legacy headerless).
                let instance = self.targets[tidx].1.clone();
                self.rollup.upsert(&instance, ctx.now(), parse_prom(text));
                self.last_epoch[tidx] = header.map(|h| h.epoch);
                self.full_scrapes += 1;
                if asked_delta {
                    // We asked for a delta; the server couldn't serve one
                    // (epoch gap on its side). Count the forced resync.
                    self.resyncs += 1;
                    ctx.metrics().bump("federation.resyncs", 1.0);
                }
                ok = true;
            }
        }
        self.ingest_nanos += ingest_started.elapsed().as_nanos() as u64;
        let rtt = ctx.now().since(sent);
        self.rtt.record(rtt.0);
        if ok {
            self.last_ok[tidx] = Some(ctx.now());
            self.scrapes_ok += 1;
            ctx.metrics().bump("federation.scrapes_ok", 1.0);
        } else {
            self.scrape_failures += 1;
            ctx.metrics().bump("federation.scrape_failures", 1.0);
        }
        self.complete(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match self.http.on_timer(ctx, tag) {
            TimerOutcome::Retried { .. } => return,
            TimerOutcome::GaveUp { req_id, .. } => {
                if self.pending.remove(&req_id).is_some() {
                    self.scrape_failures += 1;
                    ctx.metrics().bump("federation.scrape_failures", 1.0);
                    self.complete(ctx);
                }
                return;
            }
            TimerOutcome::NotMine => {}
        }
        match tag {
            TAG_ROUND => {
                self.rounds_started += 1;
                if self.rounds_started < self.spec.rounds {
                    ctx.set_timer(self.spec.cadence, TAG_ROUND);
                }
                if self.round_active() {
                    // Previous round still draining (slow WAN): run the next
                    // one back-to-back once it completes instead of
                    // overlapping scrapes of the same target.
                    self.round_pending = true;
                } else {
                    self.start_round(ctx);
                }
            }
            TAG_BATCH => {
                self.budget = (self.budget + self.spec.batch.max(1)).min(self.targets.len());
                self.pump(ctx);
                if self.budget < self.targets.len() {
                    ctx.set_timer(self.spec.batch_spacing, TAG_BATCH);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn snap(counters: &[(&str, f64)], gauges: &[(&str, f64)], rtts: &[u64]) -> TelemetrySnapshot {
        let mut m = Metrics::new();
        for (k, v) in counters {
            m.bump(k, *v);
        }
        for (k, v) in gauges {
            m.set_gauge(k, *v);
        }
        let mut h = Histogram::new();
        for r in rtts {
            h.record(*r);
        }
        let stages =
            if rtts.is_empty() { vec![] } else { vec![("scrape.rtt".to_owned(), h)] };
        TelemetrySnapshot::capture(&m, &stages)
    }

    #[test]
    fn merge_sums_counters_and_gauges_and_merges_stages() {
        let mut acc = TelemetrySnapshot::default();
        merge_snapshot(&mut acc, &snap(&[("a", 1.0)], &[("g", 2.0)], &[10]));
        merge_snapshot(&mut acc, &snap(&[("a", 3.0), ("b", 5.0)], &[("g", 4.0)], &[20, 30]));
        assert_eq!(acc.counter("a"), 4.0);
        assert_eq!(acc.counter("b"), 5.0);
        assert_eq!(acc.gauge("g"), 6.0);
        assert_eq!(acc.stage("scrape.rtt").unwrap().count(), 3);
    }

    #[test]
    fn rollup_upsert_is_idempotent() {
        let mut r = FederationRollup::new();
        let s = snap(&[("x", 7.0)], &[], &[]);
        r.upsert("cell-0", SimTime(100), s.clone());
        r.upsert("cell-0", SimTime(200), s);
        assert_eq!(r.len(), 1);
        assert_eq!(r.merged().counter("x"), 7.0, "re-upserting must replace, not double");
    }

    #[test]
    fn rollup_drops_stale_cells_and_counts_series() {
        let mut r = FederationRollup::new();
        r.upsert("cell-0", SimTime(0), snap(&[("x", 1.0)], &[("g", 1.0)], &[5]));
        r.upsert("cell-1", SimTime(9_000_000), snap(&[("x", 10.0)], &[], &[]));
        let (merged, dropped) =
            r.merged_fresh(SimTime(10_000_000), SimDuration::from_secs(5));
        // cell-0 aged out: its counters ride the built-in 5 (bytes/msgs) + x,
        // one gauge, one stage.
        assert_eq!(dropped, 6 + 1 + 1);
        assert_eq!(merged.counter("x"), 10.0);
        assert!(merged.stage("scrape.rtt").is_none());
    }

    // Delta ingest vs full ingest: scraping a cell as full-then-deltas must
    // leave the rollup — and therefore the merged fleet view the rules see —
    // byte-identical to scraping full snapshots every round.
    #[test]
    fn delta_ingest_matches_full_ingest() {
        use crate::telemetry::{render_prom, DeltaState};
        let mut m = Metrics::new();
        m.bump("slo.scrapes_ok", 3.0);
        m.set_gauge("q.depth", 5.0);
        let mut cell = DeltaState::new();
        let mut delta_rollup = FederationRollup::new();
        let mut full_rollup = FederationRollup::new();
        let mut last_epoch = None;
        for round in 0..6u64 {
            m.bump("slo.scrapes_ok", round as f64);
            if round == 3 {
                m.bump("slo.probe_failures", 1.0); // new series mid-stream
            }
            m.set_gauge("q.depth", (round * 7 % 11) as f64);
            cell.observe(&TelemetrySnapshot::capture(&m, &[]));
            // Full-mode scraper.
            let mut body = String::new();
            cell.render_into("cell-0", None, &mut body);
            full_rollup.upsert("cell-0", SimTime(round), parse_prom(&body));
            // Delta-mode scraper (round 0 is the full base).
            let since = last_epoch.filter(|&e| cell.can_delta(e));
            let mut dbody = String::new();
            cell.render_into("cell-0", since, &mut dbody);
            let h = parse_epoch_header(&dbody).expect("epoch header");
            if h.base.is_some() {
                assert!(delta_rollup.apply_delta("cell-0", SimTime(round), &parse_prom(&dbody)));
            } else {
                delta_rollup.upsert("cell-0", SimTime(round), parse_prom(&dbody));
            }
            last_epoch = Some(h.epoch);
            assert!(dbody.len() <= body.len(), "delta body larger than full");
            assert_eq!(
                render_prom("fleet", &delta_rollup.merged()),
                render_prom("fleet", &full_rollup.merged()),
                "modes diverged at round {round}"
            );
        }
    }

    #[test]
    fn apply_delta_without_a_base_demands_a_full_scrape() {
        let mut r = FederationRollup::new();
        let d = snap(&[("x", 1.0)], &[], &[]);
        assert!(!r.apply_delta("cell-0", SimTime(5), &d), "no base: caller must refetch");
        assert!(r.is_empty());
        r.upsert("cell-0", SimTime(1), snap(&[("x", 1.0)], &[], &[]));
        assert!(r.apply_delta("cell-0", SimTime(5), &d));
        assert_eq!(r.staleness("cell-0", SimTime(7)), Some(SimDuration(2)));
    }

    // Order-insensitivity and idempotence of the federation merge: any
    // permutation of cell upserts — with any cells repeated — rolls up to
    // the same fleet view. This is what makes scrape-arrival order (which
    // the WAN jitters) irrelevant to fleet rule verdicts.
    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]
        #[test]
        fn rollup_merge_is_order_insensitive_and_idempotent(
            cells in proptest::collection::vec(
                (0u64..500, 0u64..500, 1u64..1_000_000), 1..8),
            order in proptest::collection::vec(0usize..64, 1..24),
        ) {
            let snaps: Vec<(String, TelemetrySnapshot)> = cells
                .iter()
                .enumerate()
                .map(|(i, (c, g, rtt))| {
                    (
                        format!("cell-{i}"),
                        snap(&[("slo.scrapes_ok", *c as f64)], &[("q", *g as f64)], &[*rtt]),
                    )
                })
                .collect();
            // Canonical: each cell once, in index order.
            let mut canonical = FederationRollup::new();
            for (inst, s) in &snaps {
                canonical.upsert(inst, SimTime(1), s.clone());
            }
            // Shuffled with repeats: the `order` walk revisits cells freely.
            let mut shuffled = FederationRollup::new();
            for (step, &o) in order.iter().enumerate() {
                let (inst, s) = &snaps[o % snaps.len()];
                shuffled.upsert(inst, SimTime(1 + step as u64), s.clone());
            }
            // Make sure every cell landed at least once.
            for (inst, s) in &snaps {
                shuffled.upsert(inst, SimTime(999), s.clone());
            }
            proptest::prop_assert_eq!(canonical.merged(), shuffled.merged());
        }
    }
}
