//! Causal observability: trace IDs, spans and latency histograms.
//!
//! The simulator's [`crate::metrics`] counters answer "how much in total";
//! the delivery [`crate::trace`] answers "what crossed the wire". Neither
//! can answer *"which hop of transaction #7 ate the latency"*. This module
//! adds the missing causal layer:
//!
//! * **Trace IDs** — minted at the device when a Packed Information is
//!   dispatched, then carried in the metadata of every message that belongs
//!   to that logical journey ([`ObsContext`] on [`crate::message::Message`]).
//!   The context rides in the modeled frame headers: it contributes nothing
//!   to [`crate::message::Message::wire_size`], so link timing and results
//!   are byte-identical with or without a collector attached.
//! * **Spans** — named intervals with parent links and begin/end sim-times
//!   (`pi.pack`, `http.upload`, `gateway.stage`, `itinerary.hop[i]`,
//!   `mas.exec`, `result.wait`, `result.fetch`), forming one tree per trace.
//! * **Histograms** — fixed log-bucket latency distributions per span stage,
//!   alloc-free on the record path, with p50/p90/p99/max extraction.
//!
//! Everything funnels through an optional [`Collector`] owned by the
//! simulator. When no collector is attached the instrumentation hooks on
//! [`crate::sim::Ctx`] are branch-and-return no-ops: no allocation, no
//! recording, no behavioural difference (asserted by test).
//!
//! **Tail sampling** (PR 9): retaining every span of every trace cannot
//! survive the ROADMAP's million-device north star. With
//! [`Collector::enable_sampling`] the collector buffers spans per trace
//! until the trace's root span closes, classifies the completed trace
//! (alert-touched > slow-beyond-tracked-p99 > deterministic 1-in-N head
//! sample) and either moves it into a byte-budgeted reservoir or drops it.
//! Stage histograms keep recording *unconditionally* on span close, so
//! [`ObsSummary`] digests — and every result derived from them — are
//! byte-identical whether sampling is on, off, or re-budgeted. Retained
//! traces feed per-bucket [`Exemplar`]s into the exposition layer and are
//! queryable by stage/duration through [`Collector::query_traces`] (the
//! `/traces` plane in [`crate::telemetry`]).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

use crate::rng::SimRng;
use crate::time::SimTime;

/// Observability metadata carried by every message (in the modeled frame
/// headers — excluded from wire size). `trace == 0` means "untraced".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsContext {
    /// Trace (journey) identifier; 0 = none.
    pub trace: u64,
    /// Span to parent remote work under; 0 = none.
    pub span: u32,
}

impl ObsContext {
    /// The untraced context.
    pub const NONE: ObsContext = ObsContext { trace: 0, span: 0 };

    /// True when no trace is attached.
    pub fn is_none(&self) -> bool {
        self.trace == 0
    }
}

/// One named interval in a trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span id (collector-global, 1-based; 0 is the null span).
    pub id: u32,
    /// Parent span id (0 = root of its trace).
    pub parent: u32,
    /// Owning trace id.
    pub trace: u64,
    /// Stage name (static — recording never allocates for the name).
    pub name: &'static str,
    /// Optional index (e.g. itinerary hop number).
    pub index: Option<u32>,
    /// Node the span was recorded on.
    pub node: usize,
    /// Begin sim-time.
    pub begin: SimTime,
    /// End sim-time (`None` while open).
    pub end: Option<SimTime>,
}

impl Span {
    /// Display label, e.g. `itinerary.hop[1]` or `mas.exec`.
    pub fn label(&self) -> String {
        match self.index {
            Some(i) => format!("{}[{i}]", self.name),
            None => self.name.to_owned(),
        }
    }
}

const BUCKETS: usize = 65;

/// Number of log buckets in a [`Histogram`] (bucket 0 = exact zeros, bucket
/// `i > 0` = values of bit-length `i`). Public so exposition renderers can
/// size their cumulative output.
pub const HISTOGRAM_BUCKETS: usize = BUCKETS;

/// Fixed log-bucket histogram over `u64` microsecond values.
///
/// Bucket `i > 0` holds values with bit-length `i` (the range
/// `[2^(i-1), 2^i)`); bucket 0 holds exact zeros. Recording touches one
/// array slot and three scalars — no allocation, ever. Percentiles are
/// bucket-resolution upper bounds clamped to the exact observed max, so
/// `percentile(p)` never under-reports and over-reports by less than 2x.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Index of the bucket holding `value` (0 for exact zeros, else the
    /// value's bit-length). Public so exemplars can be pinned to the bucket
    /// their trace's latency landed in.
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Record one value (alloc-free).
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `p` in `[0, 1]`, at bucket resolution.
    ///
    /// Returns the upper bound of the bucket containing the rank-`⌈p·n⌉`
    /// value, clamped to the exact max — an upper bound on the true
    /// percentile that is tight to within one power of two.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket resolution).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile (bucket resolution).
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile (bucket resolution).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Merge another histogram in (bucket-wise addition — commutative and
    /// associative, so parallel shard merges are order-independent).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Raw per-bucket counts (length [`HISTOGRAM_BUCKETS`]), for exposition
    /// renderers that need cumulative `le` families.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Inclusive upper bound of bucket `i`: 0 for bucket 0, `2^i - 1` above.
    pub fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i) - 1
        }
    }

    /// Rebuild a histogram from exported parts (exposition round-trip). The
    /// count is recomputed from the buckets; `sum`/`max` are taken as given.
    pub fn from_parts(buckets: &[u64], sum: u64, max: u64) -> Histogram {
        let mut h = Histogram::new();
        for (i, &n) in buckets.iter().enumerate().take(BUCKETS) {
            h.buckets[i] = n;
            h.count += n;
        }
        h.sum = sum;
        h.max = max;
        h
    }

    /// The delta since an `earlier` snapshot of the same cumulative series:
    /// per-bucket/`count`/`sum` subtraction (saturating, so a reset snapshot
    /// degrades to the full histogram instead of wrapping). `max` cannot be
    /// windowed from cumulative data, so the cumulative max is kept — an
    /// upper bound, consistent with `percentile`'s clamping contract.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut d = Histogram::new();
        for (i, (a, b)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            d.buckets[i] = a.saturating_sub(*b);
        }
        d.count = self.count.saturating_sub(earlier.count);
        d.sum = self.sum.saturating_sub(earlier.sum);
        d.max = self.max;
        d
    }
}

/// One exemplar: the concrete retained trace behind a histogram bucket.
/// `value_us` is the span latency that landed in the bucket, `ts_us` the
/// sim-time the span closed — "latest wins" on overwrite, ties broken by the
/// larger trace id, so merges are deterministic and order-insensitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Retained trace id the bucket points back to.
    pub trace: u64,
    /// The recorded latency (µs) that fell into the bucket.
    pub value_us: u64,
    /// Sim-time (µs) the span closed.
    pub ts_us: u64,
}

/// Why a completed trace was retained. Variant order is eviction priority:
/// under byte pressure `Head` samples go first, `Alert` traces last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SampleClass {
    /// Deterministic 1-in-N head sample (the unconditional baseline).
    Head,
    /// Root latency beyond the tracked p99 of its root stage.
    Slow,
    /// The trace was touched by an SLO alert episode.
    Alert,
}

impl SampleClass {
    /// Stable lower-case name (`head` / `slow` / `alert`), used by the
    /// `/traces` exposition.
    pub fn as_str(&self) -> &'static str {
        match self {
            SampleClass::Head => "head",
            SampleClass::Slow => "slow",
            SampleClass::Alert => "alert",
        }
    }
}

/// Tail-sampler configuration.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Reservoir byte budget: retained span storage never exceeds this
    /// (lowest-priority, oldest traces are evicted first).
    pub budget_bytes: usize,
    /// Head-sample rate: 1-in-N completed traces are retained regardless of
    /// latency or alerts. `1` retains every completed trace.
    pub head_every: u64,
    /// Observations a root stage must accumulate before "slow" (beyond its
    /// tracked p99) classification arms — avoids retaining the warm-up.
    pub slow_min_count: u64,
    /// Seed for the deterministic head-sample decision stream.
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig { budget_bytes: 512 << 10, head_every: 64, slow_min_count: 32, seed: 0 }
    }
}

/// Point-in-time sampler accounting, exposed as `obs.*` gauges by the
/// telemetry servers and harvested into bench reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SamplerStats {
    /// Traces currently held in the reservoir.
    pub retained_traces: u64,
    /// Spans currently held in the reservoir.
    pub retained_spans: u64,
    /// Spans dropped so far (unretained classifications plus evictions).
    pub dropped_spans: u64,
    /// Reservoir bytes currently accounted.
    pub sampler_bytes: u64,
    /// The configured byte budget.
    pub budget_bytes: u64,
    /// Exemplar slots currently populated across all stages.
    pub exemplars: u64,
    /// Traces still buffering (root span not yet closed).
    pub pending_traces: u64,
}

/// A retained trace in the reservoir.
#[derive(Debug, Clone)]
pub struct RetainedTrace {
    /// Trace id.
    pub trace: u64,
    /// Stage name of the root span that triggered classification.
    pub root: &'static str,
    /// Begin of the classifying root span.
    pub begin: SimTime,
    /// Latest root close seen.
    pub end: SimTime,
    /// Root duration (µs) at classification (max across multi-root traces).
    pub duration_us: u64,
    /// Why the trace was kept.
    pub class: SampleClass,
    /// Insertion sequence (eviction tie-break: oldest first within a class).
    pub seq: u64,
    /// The trace's spans, in creation order.
    pub spans: Vec<Span>,
}

/// One `/traces` query result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHit {
    /// Trace id.
    pub trace: u64,
    /// Root stage name.
    pub root: &'static str,
    /// Root duration in µs.
    pub duration_us: u64,
    /// Retention class (`None` when sampling is off — everything is kept).
    pub class: Option<SampleClass>,
    /// Spans stored for the trace.
    pub spans: usize,
    /// Begin time of the root span.
    pub begin: SimTime,
}

/// FNV-1a over a stage name — the partition-stable half of the head-sample
/// key (the other half is the root span's begin time, which shard
/// partitioning provably does not perturb).
fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Record `value` into the histogram for `name`, creating the series on
/// first sight (shared by the collector's stage table and the sampler's
/// root-stage p99 tracker).
fn record_into(stages: &mut Vec<(&'static str, Histogram)>, name: &'static str, value: u64) {
    match stages.iter_mut().find(|(n, _)| *n == name) {
        Some((_, h)) => h.record(value),
        None => {
            let mut h = Histogram::new();
            h.record(value);
            stages.push((name, h));
        }
    }
}

/// Open-span bookkeeping the sampler keeps outside span storage, so closing
/// a span records its stage histogram even after its storage was evicted —
/// the invariant that keeps [`ObsSummary`] independent of sampling.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    trace: u64,
    parent: u32,
    name: &'static str,
    begin: SimTime,
}

/// Span buffer of one not-yet-classified (or classified-dropped) trace.
#[derive(Debug, Default)]
struct TraceBuf {
    spans: Vec<Span>,
    /// Spans begun and not yet closed.
    open: u32,
    /// The trace classified as "drop": closed spans are discarded, open
    /// stragglers are discarded as they close.
    dropped: bool,
}

/// The tail-sampling engine: per-trace buffers, a classified byte-budgeted
/// reservoir, the per-bucket exemplar table and the `/traces` stage index.
#[derive(Debug)]
pub struct TailSampler {
    cfg: SamplerConfig,
    /// trace id → buffered spans (incomplete or classified-dropped traces).
    pending: HashMap<u64, TraceBuf>,
    /// span id → out-of-storage close bookkeeping for every open span.
    open: HashMap<u32, OpenSpan>,
    retained: Vec<RetainedTrace>,
    /// trace id → index into `retained`.
    retained_index: HashMap<u64, usize>,
    /// root stage → `(duration_us, trace)` rows — the `/traces` index.
    index: BTreeMap<&'static str, Vec<(u64, u64)>>,
    /// Traces touched by an alert episode (classification pins them).
    alert_traces: HashSet<u64>,
    /// Per-root-stage duration histograms tracking the "slow" threshold.
    root_stats: Vec<(&'static str, Histogram)>,
    /// stage → (bucket, exemplar), inner vec sorted by bucket.
    exemplars: BTreeMap<&'static str, Vec<(u8, Exemplar)>>,
    seq: u64,
    bytes: usize,
    dropped_spans: u64,
}

impl TailSampler {
    fn new(cfg: SamplerConfig) -> TailSampler {
        TailSampler {
            cfg,
            pending: HashMap::new(),
            open: HashMap::new(),
            retained: Vec::new(),
            retained_index: HashMap::new(),
            index: BTreeMap::new(),
            alert_traces: HashSet::new(),
            root_stats: Vec::new(),
            exemplars: BTreeMap::new(),
            seq: 0,
            bytes: 0,
            dropped_spans: 0,
        }
    }

    /// Accounted storage cost of a retained trace with `spans` spans.
    fn cost(spans: usize) -> usize {
        spans * std::mem::size_of::<Span>() + std::mem::size_of::<RetainedTrace>()
    }

    fn begin(&mut self, span: Span) {
        self.open.insert(
            span.id,
            OpenSpan { trace: span.trace, parent: span.parent, name: span.name, begin: span.begin },
        );
        if let Some(&slot) = self.retained_index.get(&span.trace) {
            // Late root on an already-retained trace (e.g. `page.deliver`
            // joining an alert episode): append straight to the reservoir.
            self.retained[slot].spans.push(span);
            self.bytes += std::mem::size_of::<Span>();
            self.evict_to_budget();
            return;
        }
        let buf = self.pending.entry(span.trace).or_default();
        buf.open += 1;
        buf.spans.push(span);
    }

    fn set_exemplar(&mut self, stage: &'static str, value_us: u64, trace: u64, ts_us: u64) {
        let bucket = Histogram::bucket_of(value_us) as u8;
        let slots = self.exemplars.entry(stage).or_default();
        let fresh = Exemplar { trace, value_us, ts_us };
        match slots.binary_search_by_key(&bucket, |(b, _)| *b) {
            Ok(i) => {
                let cur = &mut slots[i].1;
                if ts_us > cur.ts_us || (ts_us == cur.ts_us && trace > cur.trace) {
                    *cur = fresh;
                }
            }
            Err(i) => slots.insert(i, (bucket, fresh)),
        }
    }

    /// Classify a completed trace at its first root close. `None` = drop.
    fn classify(
        &mut self,
        trace: u64,
        root: &'static str,
        begin: SimTime,
        micros: u64,
    ) -> Option<SampleClass> {
        let alert = self.alert_traces.contains(&trace);
        let slow = match self.root_stats.iter().find(|(n, _)| *n == root) {
            Some((_, h)) => h.count() >= self.cfg.slow_min_count && micros > h.p99(),
            None => false,
        };
        // Track the threshold *after* classifying, so a trace never competes
        // against its own latency.
        record_into(&mut self.root_stats, root, micros);
        if alert {
            return Some(SampleClass::Alert);
        }
        if slow {
            return Some(SampleClass::Slow);
        }
        let n = self.cfg.head_every.max(1);
        if n == 1 {
            return Some(SampleClass::Head);
        }
        // Deterministic and partition-stable: keyed by (root stage, begin
        // time), both invariant under resharding, through the seeded stream.
        let key = fnv64(root) ^ begin.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = SimRng::new(self.cfg.seed ^ key);
        rng.chance(1.0 / n as f64).then_some(SampleClass::Head)
    }

    /// Close span `id` at `at` (`micros` = its latency, already recorded
    /// into the collector's stage table by the caller).
    fn close(&mut self, id: u32, open: OpenSpan, at: SimTime, micros: u64) {
        if let Some(&slot) = self.retained_index.get(&open.trace) {
            let entry = &mut self.retained[slot];
            if let Some(s) = entry.spans.iter_mut().find(|s| s.id == id) {
                s.end = Some(at);
            }
            if open.parent == 0 {
                entry.end = entry.end.max(at);
                entry.duration_us = entry.duration_us.max(micros);
            }
            self.set_exemplar(open.name, micros, open.trace, at.0);
            return;
        }
        let Some(buf) = self.pending.get_mut(&open.trace) else {
            // Storage evicted after retention: the histogram record above is
            // the only thing left to do for this span.
            self.dropped_spans += 1;
            return;
        };
        buf.open = buf.open.saturating_sub(1);
        if buf.dropped {
            if let Some(i) = buf.spans.iter().position(|s| s.id == id) {
                buf.spans.remove(i);
            }
            self.dropped_spans += 1;
            if buf.open == 0 && buf.spans.is_empty() {
                self.pending.remove(&open.trace);
            }
            return;
        }
        if let Some(s) = buf.spans.iter_mut().find(|s| s.id == id) {
            s.end = Some(at);
        }
        if open.parent != 0 {
            return;
        }
        // First root close: the trace is complete — classify it.
        let verdict = self.classify(open.trace, open.name, open.begin, micros);
        match verdict {
            Some(class) => {
                let buf = self.pending.remove(&open.trace).expect("trace buffered");
                let entry = RetainedTrace {
                    trace: open.trace,
                    root: open.name,
                    begin: open.begin,
                    end: at,
                    duration_us: micros,
                    class,
                    seq: self.seq,
                    spans: buf.spans,
                };
                self.seq += 1;
                let exemplars: Vec<(&'static str, u64, u64)> = entry
                    .spans
                    .iter()
                    .filter_map(|s| {
                        s.end.map(|e| (s.name, e.0.saturating_sub(s.begin.0), e.0))
                    })
                    .collect();
                for (name, value, ts) in exemplars {
                    self.set_exemplar(name, value, open.trace, ts);
                }
                self.bytes += Self::cost(entry.spans.len());
                self.retained_index.insert(open.trace, self.retained.len());
                self.index.entry(open.name).or_default().push((micros, open.trace));
                self.retained.push(entry);
                self.evict_to_budget();
            }
            None => {
                let buf = self.pending.get_mut(&open.trace).expect("trace buffered");
                let closed = buf.spans.iter().filter(|s| s.end.is_some()).count() as u64;
                buf.spans.retain(|s| s.end.is_none());
                buf.dropped = true;
                let gone = buf.open == 0 && buf.spans.is_empty();
                self.dropped_spans += closed;
                if gone {
                    self.pending.remove(&open.trace);
                }
            }
        }
    }

    fn evict_to_budget(&mut self) {
        while self.bytes > self.cfg.budget_bytes && !self.retained.is_empty() {
            let victim = self
                .retained
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| (r.class, r.seq))
                .map(|(i, _)| i)
                .expect("non-empty reservoir");
            self.evict(victim);
        }
    }

    fn evict(&mut self, i: usize) {
        let victim = self.retained.swap_remove(i);
        self.retained_index.remove(&victim.trace);
        if i < self.retained.len() {
            self.retained_index.insert(self.retained[i].trace, i);
        }
        self.bytes = self.bytes.saturating_sub(Self::cost(victim.spans.len()));
        // Open spans of the evicted trace still close correctly (histogram
        // via the open map); they are counted dropped at their own close.
        self.dropped_spans += victim.spans.iter().filter(|s| s.end.is_some()).count() as u64;
        let empty = match self.index.get_mut(victim.root) {
            Some(rows) => {
                rows.retain(|&(_, t)| t != victim.trace);
                rows.is_empty()
            }
            None => false,
        };
        if empty {
            self.index.remove(victim.root);
        }
    }

    fn stats(&self) -> SamplerStats {
        SamplerStats {
            retained_traces: self.retained.len() as u64,
            retained_spans: self.retained.iter().map(|r| r.spans.len() as u64).sum(),
            dropped_spans: self.dropped_spans,
            sampler_bytes: self.bytes as u64,
            budget_bytes: self.cfg.budget_bytes as u64,
            exemplars: self.exemplars.values().map(|v| v.len() as u64).sum(),
            pending_traces: self.pending.len() as u64,
        }
    }
}

/// An SLO alert transition recorded into the [`Collector`] timeline:
/// `fired == true` is `AlertFired`, `false` is `AlertResolved`.
///
/// Events identify nodes by their partition-stable *label* (not the
/// shard-local `NodeId`), so alert timelines from different shardings of the
/// same topology merge into identical sequences. Deliberately *not* part of
/// [`ObsSummary`] — the f64 observation would break the summary's byte-equal
/// `Eq` contract that the sharded soak asserts on.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Sim-time of the transition.
    pub at: SimTime,
    /// Partition-stable label of the node that evaluated the rule.
    pub node_label: u64,
    /// Rule name, e.g. `p99.gateway.stage`.
    pub rule: String,
    /// Scrape target the rule was evaluated against, e.g. `gw-0`.
    pub instance: String,
    /// `true` = AlertFired, `false` = AlertResolved.
    pub fired: bool,
    /// The observed value at the transition.
    pub value: f64,
    /// The rule's limit.
    pub limit: f64,
    /// Trace id of the alert episode (minted at fire, reused at resolve).
    pub trace: u64,
    /// Exemplar trace id behind the breached signal (0 = none): for stage
    /// rules, the retained trace whose latency sits in the breached
    /// histogram's worst populated bucket.
    pub exemplar: u64,
}

/// Append `s` to `out` as JSON string *content* (no surrounding quotes),
/// escaping quotes, backslashes and control characters — rule names and
/// instance labels are operator input and must never corrupt a JSONL line.
pub fn write_json_escaped(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl ObsEvent {
    /// One-line JSON rendering (used by flight-recorder dumps). Labels are
    /// escaped, so hostile rule/instance names round-trip as valid JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"event\":\"");
        out.push_str(if self.fired { "AlertFired" } else { "AlertResolved" });
        let _ = write!(out, "\",\"at_us\":{},\"node_label\":{},\"rule\":\"", self.at.0, self.node_label);
        write_json_escaped(&mut out, &self.rule);
        out.push_str("\",\"instance\":\"");
        write_json_escaped(&mut out, &self.instance);
        let _ = write!(
            out,
            "\",\"value\":{},\"limit\":{},\"trace\":{},\"exemplar\":{}}}",
            self.value, self.limit, self.trace, self.exemplar
        );
        out
    }
}

/// Aggregated per-stage latency distributions plus reliability counters —
/// the portable digest of a run that bench reports embed as their `obs`
/// section. Merging is order-independent (see [`Histogram::merge`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsSummary {
    /// `(stage name, latency histogram in µs)`, sorted by name.
    pub stages: Vec<(String, Histogram)>,
    /// Total retransmissions / transfer retries observed.
    pub retries: u64,
    /// Total messages dropped by the link model.
    pub drops: u64,
    /// Traces started.
    pub traces: u64,
}

impl ObsSummary {
    /// Merge another summary in.
    pub fn merge(&mut self, other: &ObsSummary) {
        for (name, hist) in &other.stages {
            match self.stages.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.stages[i].1.merge(hist),
                Err(i) => self.stages.insert(i, (name.clone(), hist.clone())),
            }
        }
        self.retries += other.retries;
        self.drops += other.drops;
        self.traces += other.traces;
    }
}

/// The span/histogram sink attached to a simulator via
/// `Simulator::enable_obs()`.
#[derive(Debug, Default)]
pub struct Collector {
    spans: Vec<Span>,
    stages: Vec<(&'static str, Histogram)>,
    events: Vec<ObsEvent>,
    next_trace: u64,
    /// Monotone span-id counter (always equals `spans.len()` while sampling
    /// is off, so ids are identical to the historical scheme).
    next_span: u32,
    sampler: Option<TailSampler>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Switch the collector into tail-sampling mode. Must be called before
    /// any span is recorded (sampling a half-recorded run is undefined, so
    /// this panics instead).
    pub fn enable_sampling(&mut self, cfg: SamplerConfig) {
        assert!(
            self.next_span == 0,
            "enable_sampling must run before any span is recorded"
        );
        self.sampler = Some(TailSampler::new(cfg));
    }

    /// Is tail sampling active?
    pub fn sampling_enabled(&self) -> bool {
        self.sampler.is_some()
    }

    /// Sampler accounting (`None` while sampling is off).
    pub fn sampler_stats(&self) -> Option<SamplerStats> {
        self.sampler.as_ref().map(|s| s.stats())
    }

    /// Per-stage exemplars: `(stage, (bucket, exemplar) rows sorted by
    /// bucket)`, sorted by stage name. Empty while sampling is off — the
    /// exposition layer emits exemplar suffixes only when this is non-empty,
    /// which is what keeps sampling-off scrape bodies byte-identical.
    pub fn exemplars(&self) -> Vec<(&'static str, &[(u8, Exemplar)])> {
        match &self.sampler {
            Some(s) => s.exemplars.iter().map(|(k, v)| (*k, v.as_slice())).collect(),
            None => Vec::new(),
        }
    }

    /// Mint the next trace id (1-based; deterministic — a plain counter).
    pub fn new_trace(&mut self) -> u64 {
        self.next_trace += 1;
        self.next_trace
    }

    /// Number of traces minted.
    pub fn traces(&self) -> u64 {
        self.next_trace
    }

    /// Open a span; returns its id.
    pub fn begin_span(
        &mut self,
        trace: u64,
        parent: u32,
        name: &'static str,
        index: Option<u32>,
        node: usize,
        at: SimTime,
    ) -> u32 {
        self.next_span += 1;
        let id = self.next_span;
        let span = Span { id, parent, trace, name, index, node, begin: at, end: None };
        match &mut self.sampler {
            None => self.spans.push(span),
            Some(sampler) => sampler.begin(span),
        }
        id
    }

    /// Close a span, recording its latency into the stage histogram.
    /// Idempotent: closing a closed (or null) span is a no-op, so e.g. both
    /// the transfer-ack and the result-arrival paths may try to end
    /// `gateway.stage`. Stage histograms record whether or not the span's
    /// trace ends up retained — sampling never changes [`ObsSummary`].
    pub fn end_span(&mut self, span: u32, at: SimTime) {
        if span == 0 {
            return;
        }
        if let Some(sampler) = &mut self.sampler {
            let Some(open) = sampler.open.remove(&span) else {
                return;
            };
            let micros = at.0.saturating_sub(open.begin.0);
            record_into(&mut self.stages, open.name, micros);
            sampler.close(span, open, at, micros);
            return;
        }
        let Some(s) = self.spans.get_mut(span as usize - 1) else { return };
        if s.end.is_some() {
            return;
        }
        s.end = Some(at);
        let micros = at.0.saturating_sub(s.begin.0);
        record_into(&mut self.stages, s.name, micros);
    }

    /// All stored spans sorted by id (= creation order). With sampling off
    /// this is every span ever begun; with sampling on it is the reservoir
    /// plus still-buffering traces.
    pub fn spans_snapshot(&self) -> Vec<&Span> {
        match &self.sampler {
            None => self.spans.iter().collect(),
            Some(sampler) => {
                let mut v: Vec<&Span> = sampler
                    .pending
                    .values()
                    .flat_map(|b| b.spans.iter())
                    .chain(sampler.retained.iter().flat_map(|r| r.spans.iter()))
                    .collect();
                v.sort_by_key(|s| s.id);
                v
            }
        }
    }

    /// Record an alert transition into the timeline. With sampling on, the
    /// episode's trace is pinned: its classification becomes `Alert`, the
    /// last class to be evicted under byte pressure.
    pub fn record_event(&mut self, event: ObsEvent) {
        if let Some(sampler) = &mut self.sampler {
            if event.trace != 0 {
                sampler.alert_traces.insert(event.trace);
            }
        }
        self.events.push(event);
    }

    /// Alert transitions, in recording order.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Spans belonging to one trace (still stored — a dropped trace
    /// yields nothing).
    pub fn spans_for(&self, trace: u64) -> impl Iterator<Item = &Span> {
        let slice: &[Span] = match &self.sampler {
            None => &self.spans,
            Some(sampler) => match sampler.retained_index.get(&trace) {
                Some(&i) => &sampler.retained[i].spans,
                None => sampler.pending.get(&trace).map(|b| b.spans.as_slice()).unwrap_or(&[]),
            },
        };
        slice.iter().filter(move |s| s.trace == trace)
    }

    /// Retained traces currently in the reservoir (empty while sampling is
    /// off).
    pub fn retained(&self) -> &[RetainedTrace] {
        self.sampler.as_ref().map(|s| s.retained.as_slice()).unwrap_or(&[])
    }

    /// The `/traces` query engine: retained traces filtered by root stage
    /// and minimum root duration, sorted by duration (longest first, trace
    /// id as tie-break), truncated to `limit`. With sampling off this scans
    /// closed root spans instead, so the query plane works either way.
    pub fn query_traces(&self, stage: Option<&str>, min_us: u64, limit: usize) -> Vec<TraceHit> {
        let mut hits: Vec<TraceHit> = Vec::new();
        match &self.sampler {
            Some(sampler) => {
                let mut push = |dur: u64, trace: u64| {
                    if dur < min_us {
                        return;
                    }
                    if let Some(&i) = sampler.retained_index.get(&trace) {
                        let r = &sampler.retained[i];
                        hits.push(TraceHit {
                            trace,
                            root: r.root,
                            duration_us: r.duration_us,
                            class: Some(r.class),
                            spans: r.spans.len(),
                            begin: r.begin,
                        });
                    }
                };
                match stage {
                    Some(st) => {
                        if let Some(rows) = sampler.index.get(st) {
                            for &(d, t) in rows {
                                push(d, t);
                            }
                        }
                    }
                    None => {
                        for rows in sampler.index.values() {
                            for &(d, t) in rows {
                                push(d, t);
                            }
                        }
                    }
                }
            }
            None => {
                for sp in &self.spans {
                    if sp.parent != 0 {
                        continue;
                    }
                    let Some(e) = sp.end else { continue };
                    if let Some(st) = stage {
                        if st != sp.name {
                            continue;
                        }
                    }
                    let dur = e.0.saturating_sub(sp.begin.0);
                    if dur < min_us {
                        continue;
                    }
                    let spans = self.spans.iter().filter(|x| x.trace == sp.trace).count();
                    hits.push(TraceHit {
                        trace: sp.trace,
                        root: sp.name,
                        duration_us: dur,
                        class: None,
                        spans,
                        begin: sp.begin,
                    });
                }
            }
        }
        hits.sort_by(|a, b| {
            b.duration_us.cmp(&a.duration_us).then(a.trace.cmp(&b.trace))
        });
        hits.dedup_by_key(|h| h.trace);
        hits.truncate(limit);
        hits
    }

    /// Per-stage latency histograms, sorted by stage name.
    pub fn stages(&self) -> Vec<(&'static str, &Histogram)> {
        let mut v: Vec<_> = self.stages.iter().map(|(n, h)| (*n, h)).collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// Portable digest (retries/drops are filled in by the caller, which
    /// has access to the simulator's metrics).
    pub fn summary(&self) -> ObsSummary {
        let mut stages: Vec<(String, Histogram)> =
            self.stages.iter().map(|(n, h)| ((*n).to_owned(), h.clone())).collect();
        stages.sort_by(|a, b| a.0.cmp(&b.0));
        ObsSummary { stages, retries: 0, drops: 0, traces: self.next_trace }
    }

    /// Deterministic text timeline for one trace: each span on its own line,
    /// indented under its parent, with begin/end offsets (in seconds)
    /// relative to the trace's first span.
    pub fn render_trace(&self, trace: u64) -> String {
        let spans: Vec<&Span> = self.spans_for(trace).collect();
        let Some(origin) = spans.iter().map(|s| s.begin.0).min() else {
            return String::new();
        };
        let mut out = String::new();
        let mut roots: Vec<&Span> =
            spans.iter().copied().filter(|s| s.parent == 0).collect();
        roots.sort_by_key(|s| (s.begin.0, s.id));
        for root in roots {
            self.render_span(&mut out, &spans, root, origin, 0);
        }
        out
    }

    fn render_span(
        &self,
        out: &mut String,
        spans: &[&Span],
        span: &Span,
        origin: u64,
        depth: usize,
    ) {
        let begin = (span.begin.0 - origin) as f64 / 1e6;
        let end = span
            .end
            .map(|e| format!("{:8.3}s", (e.0 - origin) as f64 / 1e6))
            .unwrap_or_else(|| "    open".to_owned());
        let _ = writeln!(
            out,
            "[{begin:8.3}s – {end}] {:indent$}{}",
            "",
            span.label(),
            indent = depth * 2
        );
        let mut children: Vec<&Span> =
            spans.iter().copied().filter(|s| s.parent == span.id).collect();
        children.sort_by_key(|s| (s.begin.0, s.id));
        for child in children {
            self.render_span(out, spans, child, origin, depth + 1);
        }
    }

    /// JSONL export: one JSON object per span, in creation order. Span
    /// names are JSON-escaped so labels with quotes, backslashes, or
    /// control characters can never corrupt the export.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.spans_snapshot() {
            let _ = write!(out, "{{\"trace\":{},\"span\":{},\"parent\":{},\"name\":\"", s.trace, s.id, s.parent);
            write_json_escaped(&mut out, s.name);
            out.push('"');
            if let Some(i) = s.index {
                let _ = write!(out, ",\"index\":{i}");
            }
            let _ = write!(out, ",\"node\":{},\"begin_us\":{}", s.node, s.begin.0);
            if let Some(e) = s.end {
                let _ = write!(out, ",\"end_us\":{}", e.0);
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_default_is_none() {
        assert!(ObsContext::default().is_none());
        assert!(ObsContext::NONE.is_none());
        assert!(!ObsContext { trace: 3, span: 0 }.is_none());
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 1000, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 5000);
        assert_eq!(h.percentile(1.0), 5000);
        // p50 covers the rank-3 value (30): upper bound of its bucket.
        assert!(h.p50() >= 30 && h.p50() < 64);
        assert!(h.p99() <= h.max());
        assert_eq!(Histogram::new().p50(), 0);
    }

    #[test]
    fn histogram_zero_goes_to_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1u64, 7, 100] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 900, 90000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn spans_nest_and_close_idempotently() {
        let mut c = Collector::new();
        let t = c.new_trace();
        let root = c.begin_span(t, 0, "journey", None, 3, SimTime(0));
        let child = c.begin_span(t, root, "http.upload", None, 3, SimTime(10));
        c.end_span(child, SimTime(1_010));
        c.end_span(child, SimTime(9_999_999)); // ignored
        c.end_span(0, SimTime(5)); // null span: no-op
        c.end_span(root, SimTime(2_000));
        let spans: Vec<_> = c.spans_for(t).collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, root);
        assert_eq!(spans[1].end, Some(SimTime(1_010)));
        let stages = c.stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].0, "http.upload");
        assert_eq!(stages[0].1.max(), 1_000);
    }

    #[test]
    fn timeline_renders_nested_tree() {
        let mut c = Collector::new();
        let t = c.new_trace();
        let root = c.begin_span(t, 0, "journey", None, 0, SimTime(1_000_000));
        let hop = c.begin_span(t, root, "itinerary.hop", Some(1), 4, SimTime(1_500_000));
        c.end_span(hop, SimTime(2_500_000));
        c.end_span(root, SimTime(3_000_000));
        let txt = c.render_trace(t);
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("journey"));
        assert!(lines[1].contains("  itinerary.hop[1]"), "{txt}");
        assert!(lines[1].contains("0.500s"), "{txt}");
        // Unknown trace renders empty.
        assert_eq!(c.render_trace(999), "");
    }

    #[test]
    fn jsonl_is_one_object_per_span() {
        let mut c = Collector::new();
        let t = c.new_trace();
        let s = c.begin_span(t, 0, "mas.exec", Some(0), 2, SimTime(7));
        c.end_span(s, SimTime(11));
        let jsonl = c.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"name\":\"mas.exec\""));
        assert!(jsonl.contains("\"index\":0"));
        assert!(jsonl.contains("\"end_us\":11"));
    }

    #[test]
    fn summary_merge_is_order_independent() {
        let mk = |vals: &[u64]| {
            let mut c = Collector::new();
            let t = c.new_trace();
            for &v in vals {
                let s = c.begin_span(t, 0, "x", None, 0, SimTime(0));
                c.end_span(s, SimTime(v));
            }
            c.summary()
        };
        let a = mk(&[5, 10]);
        let b = mk(&[700, 9000]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn json_escaping_neutralizes_hostile_labels() {
        let mut out = String::new();
        write_json_escaped(&mut out, "a\"b\\c\nd\re\tf\u{1}g");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\re\\tf\\u0001g");
        let event = ObsEvent {
            at: SimTime(9),
            node_label: 2,
            rule: "p99.\"weird\"\nrule".into(),
            instance: "gw\\0".into(),
            fired: true,
            value: 1.5,
            limit: 1.0,
            trace: 7,
            exemplar: 3,
        };
        let json = event.to_json();
        // Raw quote/backslash/newline never appear unescaped inside the
        // string values — count the structural quotes to prove it.
        assert!(!json.contains('\n'));
        assert!(json.contains("p99.\\\"weird\\\"\\nrule"));
        assert!(json.contains("gw\\\\0"));
        assert!(json.contains("\"exemplar\":3"));
        assert!(json.ends_with('}'));
    }

    /// Run one two-span journey (root `name` + one child) through `c`,
    /// returning the trace id. Root spans `[at, at + dur_us]`.
    fn journey(c: &mut Collector, name: &'static str, at: u64, dur_us: u64) -> u64 {
        let t = c.new_trace();
        let root = c.begin_span(t, 0, name, None, 0, SimTime(at));
        let child = c.begin_span(t, root, "child.step", None, 1, SimTime(at + 1));
        c.end_span(child, SimTime(at + 1 + dur_us / 2));
        c.end_span(root, SimTime(at + dur_us));
        t
    }

    #[test]
    fn sampling_never_changes_the_summary() {
        let run = |sample: bool| {
            let mut c = Collector::new();
            if sample {
                // Drop almost everything: summary must not notice.
                c.enable_sampling(SamplerConfig {
                    head_every: 1_000_000_000,
                    ..SamplerConfig::default()
                });
            }
            for i in 0..50u64 {
                journey(&mut c, "journey", i * 1_000, 400 + i);
            }
            c.summary()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn head_every_one_retains_every_trace() {
        let mut c = Collector::new();
        c.enable_sampling(SamplerConfig { head_every: 1, ..SamplerConfig::default() });
        for i in 0..8u64 {
            journey(&mut c, "journey", i * 1_000, 300);
        }
        let stats = c.sampler_stats().unwrap();
        assert_eq!(stats.retained_traces, 8);
        assert_eq!(stats.retained_spans, 16);
        assert_eq!(stats.dropped_spans, 0);
        assert_eq!(stats.pending_traces, 0);
        assert!(stats.sampler_bytes > 0 && stats.sampler_bytes <= stats.budget_bytes);
        assert!(c.retained().iter().all(|r| r.class == SampleClass::Head));
    }

    #[test]
    fn unretained_traces_free_their_buffers() {
        let mut c = Collector::new();
        c.enable_sampling(SamplerConfig {
            head_every: 1_000_000_000,
            ..SamplerConfig::default()
        });
        let t = journey(&mut c, "journey", 0, 300);
        let stats = c.sampler_stats().unwrap();
        assert_eq!(stats.retained_traces, 0);
        assert_eq!(stats.pending_traces, 0, "dropped trace still buffered");
        assert_eq!(stats.dropped_spans, 2);
        assert_eq!(c.spans_for(t).count(), 0);
        assert_eq!(c.spans_snapshot().len(), 0);
        // The stage histograms recorded anyway.
        assert_eq!(c.stages().iter().map(|(_, h)| h.count()).sum::<u64>(), 2);
    }

    #[test]
    fn alert_touched_trace_is_pinned() {
        let mut c = Collector::new();
        c.enable_sampling(SamplerConfig {
            head_every: 1_000_000_000,
            ..SamplerConfig::default()
        });
        let t = c.new_trace();
        let root = c.begin_span(t, 0, "slo.alert", None, 0, SimTime(10));
        c.record_event(ObsEvent {
            at: SimTime(20),
            node_label: 1,
            rule: "p99.x".into(),
            instance: "gw-0".into(),
            fired: true,
            value: 2.0,
            limit: 1.0,
            trace: t,
            exemplar: 0,
        });
        c.end_span(root, SimTime(5_000_000));
        let retained = c.retained();
        assert_eq!(retained.len(), 1);
        assert_eq!(retained[0].trace, t);
        assert_eq!(retained[0].class, SampleClass::Alert);
        assert_eq!(c.spans_for(t).count(), 1);
    }

    #[test]
    fn slow_outlier_is_retained_after_warmup() {
        let cfg = SamplerConfig {
            head_every: 1_000_000_000,
            slow_min_count: 8,
            ..SamplerConfig::default()
        };
        let mut c = Collector::new();
        c.enable_sampling(cfg);
        for i in 0..8u64 {
            journey(&mut c, "journey", i * 10_000, 100);
        }
        assert_eq!(c.retained().len(), 0, "warm-up must not classify slow");
        let slow = journey(&mut c, "journey", 900_000, 2_000_000);
        let retained = c.retained();
        assert_eq!(retained.len(), 1);
        assert_eq!(retained[0].trace, slow);
        assert_eq!(retained[0].class, SampleClass::Slow);
        assert_eq!(retained[0].duration_us, 2_000_000);
    }

    #[test]
    fn head_sampling_is_order_independent() {
        // The head decision is keyed by (root stage, begin time), so two
        // collectors seeing the same journeys in opposite order retain the
        // same set — the property that keeps resharded runs byte-identical.
        let begins: Vec<u64> = (0..64u64).map(|i| i * 7_919).collect();
        let run = |order: Vec<u64>| {
            let mut c = Collector::new();
            c.enable_sampling(SamplerConfig {
                head_every: 4,
                seed: 42,
                ..SamplerConfig::default()
            });
            for at in order {
                journey(&mut c, "journey", at, 500);
            }
            let mut kept: Vec<u64> = c.retained().iter().map(|r| r.begin.0).collect();
            kept.sort_unstable();
            kept
        };
        let fwd = run(begins.clone());
        let rev = run(begins.iter().rev().copied().collect());
        assert_eq!(fwd, rev);
        assert!(!fwd.is_empty() && fwd.len() < begins.len(), "kept {}", fwd.len());
    }

    #[test]
    fn byte_budget_evicts_heads_before_alerts() {
        let trace_cost = 2 * std::mem::size_of::<Span>()
            + std::mem::size_of::<RetainedTrace>();
        let mut c = Collector::new();
        c.enable_sampling(SamplerConfig {
            budget_bytes: 3 * trace_cost,
            head_every: 1,
            ..SamplerConfig::default()
        });
        // An alert-pinned trace first, then enough head samples to overflow.
        let pinned = c.new_trace();
        let root = c.begin_span(pinned, 0, "journey", None, 0, SimTime(1));
        let kid = c.begin_span(pinned, root, "child.step", None, 0, SimTime(2));
        c.record_event(ObsEvent {
            at: SimTime(3),
            node_label: 1,
            rule: "r".into(),
            instance: "i".into(),
            fired: true,
            value: 2.0,
            limit: 1.0,
            trace: pinned,
            exemplar: 0,
        });
        c.end_span(kid, SimTime(50));
        c.end_span(root, SimTime(100));
        for i in 0..6u64 {
            journey(&mut c, "journey", 1_000 + i * 1_000, 400);
        }
        let stats = c.sampler_stats().unwrap();
        assert!(stats.sampler_bytes <= stats.budget_bytes, "{stats:?}");
        assert!(stats.retained_traces <= 3);
        assert!(stats.dropped_spans > 0);
        let retained = c.retained();
        assert!(
            retained.iter().any(|r| r.trace == pinned && r.class == SampleClass::Alert),
            "alert trace evicted before heads: {retained:?}"
        );
    }

    #[test]
    fn retained_traces_carry_exemplars_latest_wins() {
        let mut c = Collector::new();
        c.enable_sampling(SamplerConfig { head_every: 1, ..SamplerConfig::default() });
        let a = journey(&mut c, "journey", 0, 1_000);
        let b = journey(&mut c, "journey", 10_000, 1_000);
        let rows = c.exemplars();
        let journey_rows = rows
            .iter()
            .find(|(n, _)| *n == "journey")
            .map(|(_, r)| *r)
            .expect("journey exemplars");
        // Both journeys land in the same bucket; the later close wins.
        assert_eq!(journey_rows.len(), 1);
        assert_eq!(journey_rows[0].0, Histogram::bucket_of(1_000) as u8);
        assert_eq!(journey_rows[0].1, Exemplar { trace: b, value_us: 1_000, ts_us: 11_000 });
        assert!(b > a);
        assert_eq!(c.sampler_stats().unwrap().exemplars as usize, rows.iter().map(|(_, r)| r.len()).sum::<usize>());
    }

    #[test]
    fn query_traces_filters_sorts_and_limits() {
        // Off mode: scans closed roots.
        let mut c = Collector::new();
        let slow = journey(&mut c, "journey", 0, 9_000);
        let fast = journey(&mut c, "journey", 20_000, 100);
        let other = journey(&mut c, "batch", 40_000, 5_000);
        let hits = c.query_traces(None, 0, 10);
        assert_eq!(
            hits.iter().map(|h| h.trace).collect::<Vec<_>>(),
            vec![slow, other, fast],
            "longest first"
        );
        assert!(hits.iter().all(|h| h.class.is_none()));
        let hits = c.query_traces(Some("journey"), 1_000, 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].trace, slow);
        assert_eq!(hits[0].root, "journey");
        assert_eq!(hits[0].spans, 2);
        assert_eq!(c.query_traces(None, 0, 1).len(), 1);
        assert_eq!(c.query_traces(Some("nope"), 0, 10).len(), 0);

        // Sampled mode: served from the reservoir index.
        let mut c = Collector::new();
        c.enable_sampling(SamplerConfig { head_every: 1, ..SamplerConfig::default() });
        let slow = journey(&mut c, "journey", 0, 9_000);
        journey(&mut c, "journey", 20_000, 100);
        let hits = c.query_traces(Some("journey"), 1_000, 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].trace, slow);
        assert_eq!(hits[0].class, Some(SampleClass::Head));
        // The hit renders to a timeline.
        assert!(c.render_trace(slow).contains("journey"));
    }
}
