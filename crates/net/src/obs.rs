//! Causal observability: trace IDs, spans and latency histograms.
//!
//! The simulator's [`crate::metrics`] counters answer "how much in total";
//! the delivery [`crate::trace`] answers "what crossed the wire". Neither
//! can answer *"which hop of transaction #7 ate the latency"*. This module
//! adds the missing causal layer:
//!
//! * **Trace IDs** — minted at the device when a Packed Information is
//!   dispatched, then carried in the metadata of every message that belongs
//!   to that logical journey ([`ObsContext`] on [`crate::message::Message`]).
//!   The context rides in the modeled frame headers: it contributes nothing
//!   to [`crate::message::Message::wire_size`], so link timing and results
//!   are byte-identical with or without a collector attached.
//! * **Spans** — named intervals with parent links and begin/end sim-times
//!   (`pi.pack`, `http.upload`, `gateway.stage`, `itinerary.hop[i]`,
//!   `mas.exec`, `result.wait`, `result.fetch`), forming one tree per trace.
//! * **Histograms** — fixed log-bucket latency distributions per span stage,
//!   alloc-free on the record path, with p50/p90/p99/max extraction.
//!
//! Everything funnels through an optional [`Collector`] owned by the
//! simulator. When no collector is attached the instrumentation hooks on
//! [`crate::sim::Ctx`] are branch-and-return no-ops: no allocation, no
//! recording, no behavioural difference (asserted by test).

use std::fmt::Write as _;

use crate::time::SimTime;

/// Observability metadata carried by every message (in the modeled frame
/// headers — excluded from wire size). `trace == 0` means "untraced".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsContext {
    /// Trace (journey) identifier; 0 = none.
    pub trace: u64,
    /// Span to parent remote work under; 0 = none.
    pub span: u32,
}

impl ObsContext {
    /// The untraced context.
    pub const NONE: ObsContext = ObsContext { trace: 0, span: 0 };

    /// True when no trace is attached.
    pub fn is_none(&self) -> bool {
        self.trace == 0
    }
}

/// One named interval in a trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span id (collector-global, 1-based; 0 is the null span).
    pub id: u32,
    /// Parent span id (0 = root of its trace).
    pub parent: u32,
    /// Owning trace id.
    pub trace: u64,
    /// Stage name (static — recording never allocates for the name).
    pub name: &'static str,
    /// Optional index (e.g. itinerary hop number).
    pub index: Option<u32>,
    /// Node the span was recorded on.
    pub node: usize,
    /// Begin sim-time.
    pub begin: SimTime,
    /// End sim-time (`None` while open).
    pub end: Option<SimTime>,
}

impl Span {
    /// Display label, e.g. `itinerary.hop[1]` or `mas.exec`.
    pub fn label(&self) -> String {
        match self.index {
            Some(i) => format!("{}[{i}]", self.name),
            None => self.name.to_owned(),
        }
    }
}

const BUCKETS: usize = 65;

/// Number of log buckets in a [`Histogram`] (bucket 0 = exact zeros, bucket
/// `i > 0` = values of bit-length `i`). Public so exposition renderers can
/// size their cumulative output.
pub const HISTOGRAM_BUCKETS: usize = BUCKETS;

/// Fixed log-bucket histogram over `u64` microsecond values.
///
/// Bucket `i > 0` holds values with bit-length `i` (the range
/// `[2^(i-1), 2^i)`); bucket 0 holds exact zeros. Recording touches one
/// array slot and three scalars — no allocation, ever. Percentiles are
/// bucket-resolution upper bounds clamped to the exact observed max, so
/// `percentile(p)` never under-reports and over-reports by less than 2x.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Record one value (alloc-free).
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `p` in `[0, 1]`, at bucket resolution.
    ///
    /// Returns the upper bound of the bucket containing the rank-`⌈p·n⌉`
    /// value, clamped to the exact max — an upper bound on the true
    /// percentile that is tight to within one power of two.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket resolution).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile (bucket resolution).
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile (bucket resolution).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Merge another histogram in (bucket-wise addition — commutative and
    /// associative, so parallel shard merges are order-independent).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Raw per-bucket counts (length [`HISTOGRAM_BUCKETS`]), for exposition
    /// renderers that need cumulative `le` families.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Inclusive upper bound of bucket `i`: 0 for bucket 0, `2^i - 1` above.
    pub fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i) - 1
        }
    }

    /// Rebuild a histogram from exported parts (exposition round-trip). The
    /// count is recomputed from the buckets; `sum`/`max` are taken as given.
    pub fn from_parts(buckets: &[u64], sum: u64, max: u64) -> Histogram {
        let mut h = Histogram::new();
        for (i, &n) in buckets.iter().enumerate().take(BUCKETS) {
            h.buckets[i] = n;
            h.count += n;
        }
        h.sum = sum;
        h.max = max;
        h
    }

    /// The delta since an `earlier` snapshot of the same cumulative series:
    /// per-bucket/`count`/`sum` subtraction (saturating, so a reset snapshot
    /// degrades to the full histogram instead of wrapping). `max` cannot be
    /// windowed from cumulative data, so the cumulative max is kept — an
    /// upper bound, consistent with `percentile`'s clamping contract.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut d = Histogram::new();
        for (i, (a, b)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            d.buckets[i] = a.saturating_sub(*b);
        }
        d.count = self.count.saturating_sub(earlier.count);
        d.sum = self.sum.saturating_sub(earlier.sum);
        d.max = self.max;
        d
    }
}

/// An SLO alert transition recorded into the [`Collector`] timeline:
/// `fired == true` is `AlertFired`, `false` is `AlertResolved`.
///
/// Events identify nodes by their partition-stable *label* (not the
/// shard-local `NodeId`), so alert timelines from different shardings of the
/// same topology merge into identical sequences. Deliberately *not* part of
/// [`ObsSummary`] — the f64 observation would break the summary's byte-equal
/// `Eq` contract that the sharded soak asserts on.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Sim-time of the transition.
    pub at: SimTime,
    /// Partition-stable label of the node that evaluated the rule.
    pub node_label: u64,
    /// Rule name, e.g. `p99.gateway.stage`.
    pub rule: String,
    /// Scrape target the rule was evaluated against, e.g. `gw-0`.
    pub instance: String,
    /// `true` = AlertFired, `false` = AlertResolved.
    pub fired: bool,
    /// The observed value at the transition.
    pub value: f64,
    /// The rule's limit.
    pub limit: f64,
    /// Trace id of the alert episode (minted at fire, reused at resolve).
    pub trace: u64,
}

impl ObsEvent {
    /// One-line JSON rendering (used by flight-recorder dumps).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"event\":\"{}\",\"at_us\":{},\"node_label\":{},\"rule\":\"{}\",\
             \"instance\":\"{}\",\"value\":{},\"limit\":{},\"trace\":{}}}",
            if self.fired { "AlertFired" } else { "AlertResolved" },
            self.at.0,
            self.node_label,
            self.rule,
            self.instance,
            self.value,
            self.limit,
            self.trace
        )
    }
}

/// Aggregated per-stage latency distributions plus reliability counters —
/// the portable digest of a run that bench reports embed as their `obs`
/// section. Merging is order-independent (see [`Histogram::merge`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsSummary {
    /// `(stage name, latency histogram in µs)`, sorted by name.
    pub stages: Vec<(String, Histogram)>,
    /// Total retransmissions / transfer retries observed.
    pub retries: u64,
    /// Total messages dropped by the link model.
    pub drops: u64,
    /// Traces started.
    pub traces: u64,
}

impl ObsSummary {
    /// Merge another summary in.
    pub fn merge(&mut self, other: &ObsSummary) {
        for (name, hist) in &other.stages {
            match self.stages.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.stages[i].1.merge(hist),
                Err(i) => self.stages.insert(i, (name.clone(), hist.clone())),
            }
        }
        self.retries += other.retries;
        self.drops += other.drops;
        self.traces += other.traces;
    }
}

/// The span/histogram sink attached to a simulator via
/// `Simulator::enable_obs()`.
#[derive(Debug, Default)]
pub struct Collector {
    spans: Vec<Span>,
    stages: Vec<(&'static str, Histogram)>,
    events: Vec<ObsEvent>,
    next_trace: u64,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Mint the next trace id (1-based; deterministic — a plain counter).
    pub fn new_trace(&mut self) -> u64 {
        self.next_trace += 1;
        self.next_trace
    }

    /// Number of traces minted.
    pub fn traces(&self) -> u64 {
        self.next_trace
    }

    /// Open a span; returns its id.
    pub fn begin_span(
        &mut self,
        trace: u64,
        parent: u32,
        name: &'static str,
        index: Option<u32>,
        node: usize,
        at: SimTime,
    ) -> u32 {
        let id = self.spans.len() as u32 + 1;
        self.spans.push(Span { id, parent, trace, name, index, node, begin: at, end: None });
        id
    }

    /// Close a span, recording its latency into the stage histogram.
    /// Idempotent: closing a closed (or null) span is a no-op, so e.g. both
    /// the transfer-ack and the result-arrival paths may try to end
    /// `gateway.stage`.
    pub fn end_span(&mut self, span: u32, at: SimTime) {
        if span == 0 {
            return;
        }
        let Some(s) = self.spans.get_mut(span as usize - 1) else { return };
        if s.end.is_some() {
            return;
        }
        s.end = Some(at);
        let micros = at.0.saturating_sub(s.begin.0);
        let name = s.name;
        match self.stages.iter_mut().find(|(n, _)| *n == name) {
            Some((_, h)) => h.record(micros),
            None => {
                let mut h = Histogram::new();
                h.record(micros);
                self.stages.push((name, h));
            }
        }
    }

    /// All spans, in creation order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Record an alert transition into the timeline.
    pub fn record_event(&mut self, event: ObsEvent) {
        self.events.push(event);
    }

    /// Alert transitions, in recording order.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Spans belonging to one trace.
    pub fn spans_for(&self, trace: u64) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.trace == trace)
    }

    /// Per-stage latency histograms, sorted by stage name.
    pub fn stages(&self) -> Vec<(&'static str, &Histogram)> {
        let mut v: Vec<_> = self.stages.iter().map(|(n, h)| (*n, h)).collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// Portable digest (retries/drops are filled in by the caller, which
    /// has access to the simulator's metrics).
    pub fn summary(&self) -> ObsSummary {
        let mut stages: Vec<(String, Histogram)> =
            self.stages.iter().map(|(n, h)| ((*n).to_owned(), h.clone())).collect();
        stages.sort_by(|a, b| a.0.cmp(&b.0));
        ObsSummary { stages, retries: 0, drops: 0, traces: self.next_trace }
    }

    /// Deterministic text timeline for one trace: each span on its own line,
    /// indented under its parent, with begin/end offsets (in seconds)
    /// relative to the trace's first span.
    pub fn render_trace(&self, trace: u64) -> String {
        let spans: Vec<&Span> = self.spans_for(trace).collect();
        let Some(origin) = spans.iter().map(|s| s.begin.0).min() else {
            return String::new();
        };
        let mut out = String::new();
        let mut roots: Vec<&Span> =
            spans.iter().copied().filter(|s| s.parent == 0).collect();
        roots.sort_by_key(|s| (s.begin.0, s.id));
        for root in roots {
            self.render_span(&mut out, &spans, root, origin, 0);
        }
        out
    }

    fn render_span(
        &self,
        out: &mut String,
        spans: &[&Span],
        span: &Span,
        origin: u64,
        depth: usize,
    ) {
        let begin = (span.begin.0 - origin) as f64 / 1e6;
        let end = span
            .end
            .map(|e| format!("{:8.3}s", (e.0 - origin) as f64 / 1e6))
            .unwrap_or_else(|| "    open".to_owned());
        let _ = writeln!(
            out,
            "[{begin:8.3}s – {end}] {:indent$}{}",
            "",
            span.label(),
            indent = depth * 2
        );
        let mut children: Vec<&Span> =
            spans.iter().copied().filter(|s| s.parent == span.id).collect();
        children.sort_by_key(|s| (s.begin.0, s.id));
        for child in children {
            self.render_span(out, spans, child, origin, depth + 1);
        }
    }

    /// JSONL export: one JSON object per span, in creation order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let _ = write!(
                out,
                "{{\"trace\":{},\"span\":{},\"parent\":{},\"name\":\"{}\"",
                s.trace, s.id, s.parent, s.name
            );
            if let Some(i) = s.index {
                let _ = write!(out, ",\"index\":{i}");
            }
            let _ = write!(out, ",\"node\":{},\"begin_us\":{}", s.node, s.begin.0);
            if let Some(e) = s.end {
                let _ = write!(out, ",\"end_us\":{}", e.0);
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_default_is_none() {
        assert!(ObsContext::default().is_none());
        assert!(ObsContext::NONE.is_none());
        assert!(!ObsContext { trace: 3, span: 0 }.is_none());
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 1000, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 5000);
        assert_eq!(h.percentile(1.0), 5000);
        // p50 covers the rank-3 value (30): upper bound of its bucket.
        assert!(h.p50() >= 30 && h.p50() < 64);
        assert!(h.p99() <= h.max());
        assert_eq!(Histogram::new().p50(), 0);
    }

    #[test]
    fn histogram_zero_goes_to_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1u64, 7, 100] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 900, 90000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn spans_nest_and_close_idempotently() {
        let mut c = Collector::new();
        let t = c.new_trace();
        let root = c.begin_span(t, 0, "journey", None, 3, SimTime(0));
        let child = c.begin_span(t, root, "http.upload", None, 3, SimTime(10));
        c.end_span(child, SimTime(1_010));
        c.end_span(child, SimTime(9_999_999)); // ignored
        c.end_span(0, SimTime(5)); // null span: no-op
        c.end_span(root, SimTime(2_000));
        let spans: Vec<_> = c.spans_for(t).collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, root);
        assert_eq!(spans[1].end, Some(SimTime(1_010)));
        let stages = c.stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].0, "http.upload");
        assert_eq!(stages[0].1.max(), 1_000);
    }

    #[test]
    fn timeline_renders_nested_tree() {
        let mut c = Collector::new();
        let t = c.new_trace();
        let root = c.begin_span(t, 0, "journey", None, 0, SimTime(1_000_000));
        let hop = c.begin_span(t, root, "itinerary.hop", Some(1), 4, SimTime(1_500_000));
        c.end_span(hop, SimTime(2_500_000));
        c.end_span(root, SimTime(3_000_000));
        let txt = c.render_trace(t);
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("journey"));
        assert!(lines[1].contains("  itinerary.hop[1]"), "{txt}");
        assert!(lines[1].contains("0.500s"), "{txt}");
        // Unknown trace renders empty.
        assert_eq!(c.render_trace(999), "");
    }

    #[test]
    fn jsonl_is_one_object_per_span() {
        let mut c = Collector::new();
        let t = c.new_trace();
        let s = c.begin_span(t, 0, "mas.exec", Some(0), 2, SimTime(7));
        c.end_span(s, SimTime(11));
        let jsonl = c.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"name\":\"mas.exec\""));
        assert!(jsonl.contains("\"index\":0"));
        assert!(jsonl.contains("\"end_us\":11"));
    }

    #[test]
    fn summary_merge_is_order_independent() {
        let mk = |vals: &[u64]| {
            let mut c = Collector::new();
            let t = c.new_trace();
            for &v in vals {
                let s = c.begin_span(t, 0, "x", None, 0, SimTime(0));
                c.end_span(s, SimTime(v));
            }
            c.summary()
        };
        let a = mk(&[5, 10]);
        let b = mk(&[700, 9000]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }
}
