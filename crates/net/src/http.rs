//! An HTTP-like request/response layer with timeout and retransmission.
//!
//! The paper's device↔gateway traffic runs "through a HTTP connection"; this
//! module gives protocol nodes that abstraction over raw messages: framed
//! requests and responses correlated by id, plus a client-side helper
//! ([`HttpClient`]) that retries lost requests — the reliability mechanism
//! that lets PDAgent tolerate the lossy wireless hop.
//!
//! Wire framing is a compact binary format (varint-length-prefixed fields)
//! carried in messages of kind [`KIND_REQUEST`] / [`KIND_RESPONSE`].

use std::collections::HashMap;

use bytes::Bytes;
use pdagent_codec::varint;

use crate::message::Message;
use crate::obs::ObsContext;
use crate::sim::{Ctx, NodeId, TimerId};
use crate::time::SimDuration;

/// Message kind for requests.
pub const KIND_REQUEST: &str = "http.request";
/// Message kind for responses.
pub const KIND_RESPONSE: &str = "http.response";

/// Timer-tag namespace used by [`HttpClient`]; node-private tags must stay
/// below this value.
pub const HTTP_TIMER_BASE: u64 = 1 << 62;

/// Status codes used by the PDAgent protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpStatus {
    /// 200.
    Ok,
    /// 202 — accepted for asynchronous processing (agent dispatched).
    Accepted,
    /// 400.
    BadRequest,
    /// 401 — e.g. invalid unique key on dispatch.
    Unauthorized,
    /// 404.
    NotFound,
    /// 409 — result not ready yet.
    Conflict,
    /// 500.
    ServerError,
}

impl HttpStatus {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            HttpStatus::Ok => 200,
            HttpStatus::Accepted => 202,
            HttpStatus::BadRequest => 400,
            HttpStatus::Unauthorized => 401,
            HttpStatus::NotFound => 404,
            HttpStatus::Conflict => 409,
            HttpStatus::ServerError => 500,
        }
    }

    /// From a numeric code (unknown codes map to `ServerError`).
    pub fn from_code(code: u16) -> HttpStatus {
        match code {
            200 => HttpStatus::Ok,
            202 => HttpStatus::Accepted,
            400 => HttpStatus::BadRequest,
            401 => HttpStatus::Unauthorized,
            404 => HttpStatus::NotFound,
            409 => HttpStatus::Conflict,
            _ => HttpStatus::ServerError,
        }
    }

    /// Is this a success (2xx) status?
    pub fn is_success(self) -> bool {
        matches!(self, HttpStatus::Ok | HttpStatus::Accepted)
    }
}

/// A framed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Correlation id (set by [`HttpClient`]).
    pub req_id: u64,
    /// Method, e.g. `"POST"`.
    pub method: String,
    /// Path, e.g. `"/pdagent/dispatch"`.
    pub path: String,
    /// Payload. Parsing slices the carrying message's buffer, so a request
    /// decoded from the wire aliases the received bytes instead of copying.
    pub body: Bytes,
    /// Observability metadata; carried on the wrapping [`Message`], not in
    /// the framed payload, and preserved across retransmissions.
    pub obs: ObsContext,
}

/// A framed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Correlation id copied from the request.
    pub req_id: u64,
    /// Status.
    pub status: HttpStatus,
    /// Payload (zero-copy slice of the carrying message when parsed).
    pub body: Bytes,
    /// Observability metadata, copied from the request by
    /// [`HttpResponse::reply`] so responses stay attributed to the journey.
    pub obs: ObsContext,
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    varint::write_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn read_str(input: &[u8], pos: &mut usize) -> Option<String> {
    let len = varint::read_usize(input, pos).ok()?;
    let end = pos.checked_add(len)?;
    if end > input.len() {
        return None;
    }
    let s = std::str::from_utf8(&input[*pos..end]).ok()?.to_owned();
    *pos = end;
    Some(s)
}

/// Read a length-prefixed byte field as a zero-copy slice of the message
/// buffer.
fn read_body(msg: &Message, pos: &mut usize) -> Option<Bytes> {
    let len = varint::read_usize(&msg.body, pos).ok()?;
    let end = pos.checked_add(len)?;
    if end > msg.body.len() {
        return None;
    }
    let b = msg.body.slice(*pos..end);
    *pos = end;
    Some(b)
}

impl HttpRequest {
    /// Construct a request (the client assigns `req_id`).
    pub fn new(
        method: impl Into<String>,
        path: impl Into<String>,
        body: impl Into<Bytes>,
    ) -> Self {
        HttpRequest {
            req_id: 0,
            method: method.into(),
            path: path.into(),
            body: body.into(),
            obs: ObsContext::NONE,
        }
    }

    /// Attach observability metadata (builder-style).
    pub fn traced(mut self, obs: ObsContext) -> HttpRequest {
        self.obs = obs;
        self
    }

    /// Serialize into a [`Message`].
    pub fn to_message(&self) -> Message {
        let mut out = Vec::with_capacity(self.body.len() + 32);
        varint::write_u64(&mut out, self.req_id);
        write_str(&mut out, &self.method);
        write_str(&mut out, &self.path);
        varint::write_usize(&mut out, self.body.len());
        out.extend_from_slice(&self.body);
        Message::new(KIND_REQUEST, out).traced(self.obs)
    }

    /// Parse from a [`Message`]; `None` if it is not a well-formed request.
    pub fn from_message(msg: &Message) -> Option<HttpRequest> {
        if msg.kind != KIND_REQUEST {
            return None;
        }
        let mut pos = 0;
        let req_id = varint::read_u64(&msg.body, &mut pos).ok()?;
        let method = read_str(&msg.body, &mut pos)?;
        let path = read_str(&msg.body, &mut pos)?;
        let body = read_body(msg, &mut pos)?;
        Some(HttpRequest { req_id, method, path, body, obs: msg.obs })
    }
}

impl HttpResponse {
    /// Construct a response to `req` (inherits the request's trace context).
    pub fn reply(req: &HttpRequest, status: HttpStatus, body: impl Into<Bytes>) -> HttpResponse {
        HttpResponse { req_id: req.req_id, status, body: body.into(), obs: req.obs }
    }

    /// Serialize into a [`Message`].
    pub fn to_message(&self) -> Message {
        let mut out = Vec::with_capacity(self.body.len() + 16);
        varint::write_u64(&mut out, self.req_id);
        varint::write_u64(&mut out, self.status.code() as u64);
        varint::write_usize(&mut out, self.body.len());
        out.extend_from_slice(&self.body);
        Message::new(KIND_RESPONSE, out).traced(self.obs)
    }

    /// Parse from a [`Message`]; `None` if it is not a well-formed response.
    pub fn from_message(msg: &Message) -> Option<HttpResponse> {
        if msg.kind != KIND_RESPONSE {
            return None;
        }
        let mut pos = 0;
        let req_id = varint::read_u64(&msg.body, &mut pos).ok()?;
        let code = varint::read_u64(&msg.body, &mut pos).ok()? as u16;
        let body = read_body(msg, &mut pos)?;
        Some(HttpResponse { req_id, status: HttpStatus::from_code(code), body, obs: msg.obs })
    }
}

/// Outcome of [`HttpClient::on_timer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimerOutcome {
    /// The tag did not belong to this client.
    NotMine,
    /// A lost request was retransmitted.
    Retried {
        /// The request id that was retransmitted.
        req_id: u64,
    },
    /// Retries exhausted; the request has failed.
    GaveUp {
        /// The failed request id.
        req_id: u64,
        /// The original request, for error reporting.
        request: HttpRequest,
    },
}

#[derive(Debug)]
struct Pending {
    request: HttpRequest,
    /// The serialized request, kept so retransmissions clone the same wire
    /// buffer (a refcount bump) instead of re-serializing the request.
    wire: Message,
    server: NodeId,
    attempts: u32,
    timer: TimerId,
    /// This request's retransmission timeout (usually the client-wide RTO;
    /// see [`HttpClient::send_with_timeout`]).
    timeout: SimDuration,
}

/// Client-side request tracker with timeout/retransmit, embedded in a node.
///
/// Usage pattern inside a [`crate::sim::Node`]:
/// * call [`HttpClient::send`] to issue a request;
/// * forward every incoming message to [`HttpClient::on_response`]; a
///   `Some(response)` return is a completed exchange;
/// * forward every timer to [`HttpClient::on_timer`] and handle
///   [`TimerOutcome::GaveUp`].
#[derive(Debug)]
pub struct HttpClient {
    next_id: u64,
    pending: HashMap<u64, Pending>,
    /// Retransmission timeout.
    pub timeout: SimDuration,
    /// Retransmissions before giving up.
    pub max_retries: u32,
}

impl Default for HttpClient {
    fn default() -> Self {
        Self::new()
    }
}

impl HttpClient {
    /// Client with defaults suited to the wireless link (3 s RTO, 4 retries).
    pub fn new() -> HttpClient {
        HttpClient {
            next_id: 0,
            pending: HashMap::new(),
            timeout: SimDuration::from_secs(3),
            max_retries: 4,
        }
    }

    /// Number of requests awaiting responses.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Send `request` to `server`. Returns the assigned request id.
    pub fn send(&mut self, ctx: &mut Ctx<'_>, server: NodeId, request: HttpRequest) -> u64 {
        let timeout = self.timeout;
        self.send_with_timeout(ctx, server, request, timeout)
    }

    /// [`HttpClient::send`] with a per-request retransmission timeout, for
    /// requests whose response is gated on a long serialization delay (a
    /// multi-KiB PI trickling over a wireless link) where the client-wide
    /// RTO would fire while the upload is still on the wire. Retransmissions
    /// of this request reuse the same timeout.
    pub fn send_with_timeout(
        &mut self,
        ctx: &mut Ctx<'_>,
        server: NodeId,
        mut request: HttpRequest,
        timeout: SimDuration,
    ) -> u64 {
        self.next_id += 1;
        let req_id = self.next_id;
        request.req_id = req_id;
        let wire = request.to_message();
        ctx.send(server, wire.clone());
        let timer = ctx.set_timer(timeout, HTTP_TIMER_BASE | req_id);
        self.pending.insert(
            req_id,
            Pending { request, wire, server, attempts: 1, timer, timeout },
        );
        req_id
    }

    /// Offer an incoming message. Returns the response if it completes one of
    /// this client's pending requests.
    pub fn on_response(&mut self, ctx: &mut Ctx<'_>, msg: &Message) -> Option<HttpResponse> {
        let resp = HttpResponse::from_message(msg)?;
        let pending = self.pending.remove(&resp.req_id)?;
        ctx.cancel_timer(pending.timer);
        Some(resp)
    }

    /// Offer a fired timer tag.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) -> TimerOutcome {
        if tag & HTTP_TIMER_BASE == 0 {
            return TimerOutcome::NotMine;
        }
        let req_id = tag & !HTTP_TIMER_BASE;
        let Some(mut pending) = self.pending.remove(&req_id) else {
            return TimerOutcome::NotMine; // already completed
        };
        if pending.attempts > self.max_retries {
            ctx.metrics().bump("http.gave_up", 1.0);
            return TimerOutcome::GaveUp { req_id, request: pending.request };
        }
        pending.attempts += 1;
        ctx.metrics().bump("http.retransmits", 1.0);
        ctx.send(pending.server, pending.wire.clone());
        pending.timer = ctx.set_timer(pending.timeout, HTTP_TIMER_BASE | req_id);
        self.pending.insert(req_id, pending);
        TimerOutcome::Retried { req_id }
    }

    /// Abandon all in-flight requests (e.g. when going offline).
    pub fn abort_all(&mut self, ctx: &mut Ctx<'_>) {
        for (_, pending) in self.pending.drain() {
            ctx.cancel_timer(pending.timer);
        }
    }
}

/// Server-side convenience: parse a request and reply via `ctx`. The body
/// accepts anything `Bytes`-convertible — echoing a request body back is a
/// refcount bump, not a copy.
pub fn reply(
    ctx: &mut Ctx<'_>,
    to: NodeId,
    req: &HttpRequest,
    status: HttpStatus,
    body: impl Into<Bytes>,
) {
    ctx.send(to, HttpResponse::reply(req, status, body).to_message());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::sim::{Node, Simulator};

    #[test]
    fn request_roundtrips_through_message() {
        let mut req = HttpRequest::new("POST", "/dispatch", b"payload".to_vec());
        req.req_id = 42;
        let msg = req.to_message();
        assert_eq!(msg.kind, KIND_REQUEST);
        assert_eq!(HttpRequest::from_message(&msg).unwrap(), req);
    }

    #[test]
    fn response_roundtrips_through_message() {
        let req = HttpRequest { req_id: 9, ..HttpRequest::new("GET", "/r", vec![]) };
        let resp = HttpResponse::reply(&req, HttpStatus::Accepted, b"ok".to_vec());
        let back = HttpResponse::from_message(&resp.to_message()).unwrap();
        assert_eq!(back.req_id, 9);
        assert_eq!(back.status, HttpStatus::Accepted);
        assert_eq!(back.body, b"ok");
    }

    #[test]
    fn trace_context_rides_request_and_reply() {
        let obs = ObsContext { trace: 5, span: 2 };
        let mut req = HttpRequest::new("POST", "/dispatch", vec![]).traced(obs);
        req.req_id = 1;
        let msg = req.to_message();
        assert_eq!(msg.obs, obs, "request context must ride the message");
        let parsed = HttpRequest::from_message(&msg).unwrap();
        assert_eq!(parsed.obs, obs);
        let resp = HttpResponse::reply(&parsed, HttpStatus::Ok, vec![]);
        let back = HttpResponse::from_message(&resp.to_message()).unwrap();
        assert_eq!(back.obs, obs, "reply inherits the request context");
    }

    #[test]
    fn malformed_messages_rejected() {
        assert!(HttpRequest::from_message(&Message::new("other", vec![])).is_none());
        assert!(HttpRequest::from_message(&Message::new(KIND_REQUEST, vec![0xff])).is_none());
        assert!(HttpResponse::from_message(&Message::new(KIND_RESPONSE, vec![])).is_none());
        // Truncated body length.
        let mut req = HttpRequest::new("GET", "/x", vec![1, 2, 3]);
        req.req_id = 1;
        let mut msg = req.to_message();
        msg.body = msg.body.slice(..msg.body.len() - 2);
        assert!(HttpRequest::from_message(&msg).is_none());
    }

    #[test]
    fn parsed_bodies_alias_the_wire_buffer() {
        // Zero-copy parse: the request body produced by `from_message` is a
        // slice of the message buffer itself.
        let mut req = HttpRequest::new("POST", "/dispatch", vec![0x5au8; 256]);
        req.req_id = 7;
        let msg = req.to_message();
        let parsed = HttpRequest::from_message(&msg).unwrap();
        assert!(parsed.body.shares_allocation_with(&msg.body));
        assert_eq!(parsed.body.len(), 256);
        let resp = HttpResponse::reply(&parsed, HttpStatus::Ok, parsed.body.clone());
        let resp_msg = resp.to_message();
        let parsed_resp = HttpResponse::from_message(&resp_msg).unwrap();
        assert!(parsed_resp.body.shares_allocation_with(&resp_msg.body));
        assert_eq!(parsed_resp.body, parsed.body);
    }

    #[test]
    fn status_code_mapping() {
        for s in [
            HttpStatus::Ok,
            HttpStatus::Accepted,
            HttpStatus::BadRequest,
            HttpStatus::Unauthorized,
            HttpStatus::NotFound,
            HttpStatus::Conflict,
            HttpStatus::ServerError,
        ] {
            assert_eq!(HttpStatus::from_code(s.code()), s);
        }
        assert_eq!(HttpStatus::from_code(999), HttpStatus::ServerError);
        assert!(HttpStatus::Ok.is_success());
        assert!(HttpStatus::Accepted.is_success());
        assert!(!HttpStatus::NotFound.is_success());
    }

    #[test]
    fn echo_reply_aliases_request_buffer() {
        // The EchoServer pattern below (`reply(..., req.body.clone())`) must
        // be zero-copy end to end on the server: the reply body is the same
        // backing range of the request's wire buffer, length for length.
        let mut req = HttpRequest::new("POST", "/echo", vec![0x42u8; 512]);
        req.req_id = 3;
        let wire = req.to_message();
        let parsed = HttpRequest::from_message(&wire).unwrap();
        let resp = HttpResponse::reply(&parsed, HttpStatus::Ok, parsed.body.clone());
        assert_eq!(resp.body.len(), parsed.body.len());
        assert!(
            resp.body.shares_allocation_with(&wire.body),
            "echo reply must alias the request wire buffer, not copy it"
        );
        assert_eq!(resp.body.as_ptr(), parsed.body.as_ptr());
    }

    // --- end-to-end client/server over the simulator ---

    /// Echo server: replies 200 with the request body (zero-copy: the clone
    /// is a refcount bump on the request's wire buffer).
    struct EchoServer;
    impl Node for EchoServer {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
            if let Some(req) = HttpRequest::from_message(&msg) {
                reply(ctx, from, &req, HttpStatus::Ok, req.body.clone());
            }
        }
    }

    /// Client that issues one request and records the outcome.
    struct OneShot {
        server: NodeId,
        http: HttpClient,
        response: Option<HttpResponse>,
        gave_up: bool,
    }
    impl OneShot {
        fn new(server: NodeId) -> Self {
            OneShot { server, http: HttpClient::new(), response: None, gave_up: false }
        }
    }
    impl Node for OneShot {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let req = HttpRequest::new("POST", "/echo", b"hello".to_vec());
            self.http.send(ctx, self.server, req);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
            if let Some(resp) = self.http.on_response(ctx, &msg) {
                self.response = Some(resp);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
            if let TimerOutcome::GaveUp { .. } = self.http.on_timer(ctx, tag) {
                self.gave_up = true;
            }
        }
    }

    fn client_server(seed: u64, link: LinkSpec) -> (Simulator, NodeId) {
        let mut sim = Simulator::new(seed);
        let server = sim.add_node(Box::new(EchoServer));
        let client = sim.add_node(Box::new(OneShot::new(server)));
        sim.connect(client, server, link);
        (sim, client)
    }

    #[test]
    fn exchange_over_clean_link() {
        let (mut sim, client) = client_server(1, LinkSpec::lan());
        sim.run_until_idle();
        let c = sim.node_ref::<OneShot>(client).unwrap();
        assert_eq!(c.response.as_ref().unwrap().body, b"hello");
        assert!(!c.gave_up);
    }

    #[test]
    fn retransmit_recovers_from_loss() {
        // 60% loss: with 4 retries success is overwhelmingly likely.
        let (mut sim, client) = client_server(2, LinkSpec::lan().with_loss(0.6));
        sim.run_until_idle();
        let c = sim.node_ref::<OneShot>(client).unwrap();
        assert!(c.response.is_some() || c.gave_up);
        // Retransmissions happened (seed-dependent but extremely likely).
        let retrans = sim.metrics(client).counter("http.retransmits");
        assert!(retrans >= 0.0);
    }

    #[test]
    fn gives_up_on_dead_link() {
        let (mut sim, client) = client_server(3, LinkSpec::lan().with_loss(1.0));
        sim.run_until_idle();
        let c = sim.node_ref::<OneShot>(client).unwrap();
        assert!(c.gave_up);
        assert!(c.response.is_none());
        assert_eq!(sim.metrics(client).counter("http.gave_up"), 1.0);
        // 1 initial + 4 retries.
        assert_eq!(sim.metrics(client).msgs_sent, 5);
    }

    #[test]
    fn abort_all_cancels_in_flight_requests() {
        struct SilentServer;
        impl Node for SilentServer {
            fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Message) {}
        }
        struct Aborter {
            server: NodeId,
            http: HttpClient,
            gave_up: bool,
        }
        impl Node for Aborter {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.http.send(ctx, self.server, HttpRequest::new("GET", "/a", vec![]));
                self.http.send(ctx, self.server, HttpRequest::new("GET", "/b", vec![]));
                assert_eq!(self.http.in_flight(), 2);
                // Go offline immediately: abandon everything.
                self.http.abort_all(ctx);
                assert_eq!(self.http.in_flight(), 0);
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _: NodeId, msg: Message) {
                self.http.on_response(ctx, &msg);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
                if let TimerOutcome::GaveUp { .. } = self.http.on_timer(ctx, tag) {
                    self.gave_up = true;
                }
            }
        }
        let mut sim = Simulator::new(11);
        let server = sim.add_node(Box::new(SilentServer));
        let client = sim.add_node(Box::new(Aborter {
            server,
            http: HttpClient::new(),
            gave_up: false,
        }));
        sim.connect(client, server, LinkSpec::lan());
        sim.run_until_idle();
        // No retransmission storm, no give-up callbacks: the timers were
        // cancelled along with the requests.
        let c = sim.node_ref::<Aborter>(client).unwrap();
        assert!(!c.gave_up);
        assert_eq!(sim.metrics(client).counter("http.retransmits"), 0.0);
    }

    #[test]
    fn duplicate_responses_ignored() {
        // Server that replies twice.
        struct DoubleReply;
        impl Node for DoubleReply {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
                if let Some(req) = HttpRequest::from_message(&msg) {
                    reply(ctx, from, &req, HttpStatus::Ok, b"1".to_vec());
                    reply(ctx, from, &req, HttpStatus::Ok, b"2".to_vec());
                }
            }
        }
        let mut sim = Simulator::new(4);
        let server = sim.add_node(Box::new(DoubleReply));
        let client = sim.add_node(Box::new(OneShot::new(server)));
        sim.connect(client, server, LinkSpec::ideal());
        sim.run_until_idle();
        let c = sim.node_ref::<OneShot>(client).unwrap();
        // Only the first completes the exchange.
        assert_eq!(c.response.as_ref().unwrap().body, b"1");
    }
}
