//! Measurement: connection-time accounting, byte counters, scoreboard.
//!
//! "Internet connection time" is the paper's headline metric (Figure 12): the
//! total virtual time a device holds an open connection to the wired network.
//! Protocol nodes bracket their online periods with
//! [`Metrics::connection_opened`] / [`Metrics::connection_closed`]; the
//! harness reads [`Metrics::total_connection_time`] afterwards.

use std::collections::HashMap;

use crate::message::Kind;
use crate::time::{SimDuration, SimTime};

/// Gauge key under which a serving node's `/metrics` exposition publishes
/// the hosting simulator's current event-queue depth (pending events,
/// tombstoned timers included). Sampled at scrape time from the queue's
/// O(1) occupancy counter — nothing on the dispatch hot path.
pub const KEY_QUEUE_DEPTH: &str = "sim.queue_depth";

/// Per-node measurement state.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    /// Bytes handed to the link layer (counted even if the link drops them —
    /// the radio still transmitted).
    pub bytes_sent: u64,
    /// Bytes delivered to this node.
    pub bytes_received: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages delivered to this node.
    pub msgs_received: u64,
    /// Messages this node sent that the link dropped.
    pub msgs_dropped: u64,
    /// Closed connection intervals.
    intervals: Vec<(SimTime, SimTime)>,
    /// Currently-open connection start, if any.
    open_since: Option<SimTime>,
    /// Free-form named counters for protocol-specific accounting. Keys are
    /// interned [`Kind`]s (the same table as message kinds): the few dozen
    /// distinct telemetry names share one allocation process-wide, and the
    /// `&str` lookup in [`Metrics::bump`] never allocates.
    counters: HashMap<Kind, f64>,
    /// Named gauges (set-semantics: last write wins). Used for instantaneous
    /// sizes — cache entries, staged agents — where `bump` accumulation would
    /// be meaningless.
    gauges: HashMap<Kind, f64>,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Mark the start of an online period. Nested opens are idempotent (the
    /// earliest open wins), matching "is the radio up" semantics.
    pub fn connection_opened(&mut self, now: SimTime) {
        if self.open_since.is_none() {
            self.open_since = Some(now);
        }
    }

    /// Mark the end of an online period. A close without an open is ignored.
    pub fn connection_closed(&mut self, now: SimTime) {
        if let Some(start) = self.open_since.take() {
            self.intervals.push((start, now));
        }
    }

    /// Is a connection currently open?
    pub fn connection_open(&self) -> bool {
        self.open_since.is_some()
    }

    /// Total time online: closed intervals plus any still-open period up to
    /// `now`.
    pub fn total_connection_time(&self, now: SimTime) -> SimDuration {
        let closed: SimDuration = self.intervals.iter().map(|&(s, e)| e.since(s)).sum();
        match self.open_since {
            Some(start) => closed + now.since(start),
            None => closed,
        }
    }

    /// Number of completed connections.
    pub fn connection_count(&self) -> usize {
        self.intervals.len()
    }

    /// The closed intervals (for inspection in tests/reports).
    pub fn intervals(&self) -> &[(SimTime, SimTime)] {
        &self.intervals
    }

    /// Add `v` to a named counter. The key is interned the first time any
    /// node in the process sees it; steady-state bumps are a pure hash
    /// lookup with zero allocation (`Kind: Borrow<str>`).
    pub fn bump(&mut self, key: &str, v: f64) {
        match self.counters.get_mut(key) {
            Some(c) => *c += v,
            None => {
                self.counters.insert(Kind::intern(key), v);
            }
        }
    }

    /// Read a named counter (0 if never bumped).
    pub fn counter(&self, key: &str) -> f64 {
        self.counters.get(key).copied().unwrap_or(0.0)
    }

    /// All named counters, sorted by key (deterministic reporting). Borrows
    /// the keys — taking a snapshot clones nothing.
    pub fn counters_sorted(&self) -> Vec<(&str, f64)> {
        let mut v: Vec<(&str, f64)> =
            self.counters.iter().map(|(k, &x)| (k.as_str(), x)).collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// Set a named gauge to `v` (last write wins). Like `bump`, the key is
    /// interned on first sight and looked up alloc-free afterwards.
    pub fn set_gauge(&mut self, key: &str, v: f64) {
        match self.gauges.get_mut(key) {
            Some(g) => *g = v,
            None => {
                self.gauges.insert(Kind::intern(key), v);
            }
        }
    }

    /// Read a named gauge (0 if never set).
    pub fn gauge(&self, key: &str) -> f64 {
        self.gauges.get(key).copied().unwrap_or(0.0)
    }

    /// All named gauges, sorted by key.
    pub fn gauges_sorted(&self) -> Vec<(&str, f64)> {
        let mut v: Vec<(&str, f64)> =
            self.gauges.iter().map(|(k, &x)| (k.as_str(), x)).collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }
}

/// Registry of per-node metrics plus a global scoreboard.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    per_node: Vec<Metrics>,
    /// Simulation-wide counters (e.g. total wireless bytes).
    pub global: Metrics,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Ensure capacity for `n` nodes.
    pub fn ensure(&mut self, n: usize) {
        while self.per_node.len() < n {
            self.per_node.push(Metrics::new());
        }
    }

    /// Metrics for one node.
    pub fn node(&self, id: usize) -> &Metrics {
        &self.per_node[id]
    }

    /// Mutable metrics for one node.
    pub fn node_mut(&mut self, id: usize) -> &mut Metrics {
        &mut self.per_node[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_intervals_sum() {
        let mut m = Metrics::new();
        m.connection_opened(SimTime(100));
        m.connection_closed(SimTime(300));
        m.connection_opened(SimTime(1000));
        m.connection_closed(SimTime(1500));
        assert_eq!(m.total_connection_time(SimTime(2000)), SimDuration(700));
        assert_eq!(m.connection_count(), 2);
        assert!(!m.connection_open());
    }

    #[test]
    fn open_interval_counts_up_to_now() {
        let mut m = Metrics::new();
        m.connection_opened(SimTime(0));
        assert!(m.connection_open());
        assert_eq!(m.total_connection_time(SimTime(500)), SimDuration(500));
        m.connection_closed(SimTime(800));
        assert_eq!(m.total_connection_time(SimTime(10_000)), SimDuration(800));
    }

    #[test]
    fn nested_opens_idempotent() {
        let mut m = Metrics::new();
        m.connection_opened(SimTime(100));
        m.connection_opened(SimTime(200)); // ignored
        m.connection_closed(SimTime(300));
        assert_eq!(m.total_connection_time(SimTime(300)), SimDuration(200));
    }

    #[test]
    fn close_without_open_ignored() {
        let mut m = Metrics::new();
        m.connection_closed(SimTime(100));
        assert_eq!(m.connection_count(), 0);
        assert_eq!(m.total_connection_time(SimTime(100)), SimDuration::ZERO);
    }

    #[test]
    fn counters() {
        let mut m = Metrics::new();
        m.bump("transactions", 1.0);
        m.bump("transactions", 2.0);
        m.bump("retries", 1.0);
        assert_eq!(m.counter("transactions"), 3.0);
        assert_eq!(m.counter("missing"), 0.0);
        let sorted = m.counters_sorted();
        assert_eq!(sorted[0].0, "retries");
        assert_eq!(sorted[1].0, "transactions");
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let mut m = Metrics::new();
        m.set_gauge("gateway.replay_entries", 3.0);
        m.set_gauge("gateway.replay_entries", 7.0);
        m.set_gauge("mas.completed_entries", 1.0);
        assert_eq!(m.gauge("gateway.replay_entries"), 7.0);
        assert_eq!(m.gauge("missing"), 0.0);
        let sorted = m.gauges_sorted();
        assert_eq!(sorted.len(), 2);
        assert_eq!(sorted[0].0, "gateway.replay_entries");
    }

    #[test]
    fn counter_keys_are_interned() {
        // Two Metrics instances bumping the same key share one allocation:
        // the sorted snapshots borrow str slices with identical addresses.
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.bump("telemetry.shared_key", 1.0);
        b.bump("telemetry.shared_key", 2.0);
        let ka = a.counters_sorted()[0].0 as *const str;
        let kb = b.counters_sorted()[0].0 as *const str;
        assert_eq!(ka, kb, "interned keys must share one allocation");
    }

    #[test]
    fn registry_grows() {
        let mut reg = MetricsRegistry::new();
        reg.ensure(3);
        reg.node_mut(2).bump("x", 1.0);
        assert_eq!(reg.node(2).counter("x"), 1.0);
        assert_eq!(reg.node(0).counter("x"), 0.0);
    }
}
