//! # pdagent-net
//!
//! A deterministic discrete-event network simulator — the substrate on which
//! the whole PDAgent reproduction runs.
//!
//! The paper's evaluation (Figures 12 and 13) measures *Internet connection
//! time* and *completion-time variance over a wireless link*; both are
//! properties of protocol structure (how many online round trips each
//! approach needs) interacting with link latency, jitter, bandwidth and loss.
//! This crate models exactly those quantities:
//!
//! * [`time`] — virtual time with microsecond resolution.
//! * [`rng`] — seeded randomness and the jitter distributions.
//! * [`message`] — the byte-oriented message envelope. Everything that
//!   crosses a link must be serialized to bytes, mirroring the paper's
//!   insistence on XML wire encoding for interoperability.
//! * [`link`] — link specifications (latency, jitter, bandwidth, loss,
//!   up/down) and the topology.
//! * [`queue`] — the event-loop schedulers: the hierarchical timer wheel +
//!   slab event arena the simulator runs on, and the reference binary heap
//!   it is proven byte-equivalent to.
//! * [`sim`] — the event loop: [`sim::Simulator`], the [`sim::Node`] trait
//!   protocol state machines implement, and the per-event [`sim::Ctx`].
//! * [`http`] — an HTTP-like request/response layer with timeouts and
//!   retries, plus client-side helpers.
//! * [`metrics`] — connection-time accounting (the paper's headline metric),
//!   byte counters, a free-form scoreboard and gauges.
//! * [`obs`] — causal observability: trace ids minted per agent journey,
//!   parent/child spans with sim-time bounds, log-bucket latency histograms
//!   and deterministic timeline/JSONL exporters. Zero-cost unless a
//!   collector is attached via [`sim::Simulator::enable_obs`].
//! * [`telemetry`] — the operational plane: Prometheus-style text exposition
//!   (`GET /metrics`), health probes (`GET /healthz`) and the bounded flight
//!   recorder dumped when alerts fire.
//! * [`slo`] — declarative service-level rules (windowed p99, error ratio,
//!   gauge bounds, two-window burn rate), the alert engine, and the in-sim
//!   scraping monitor node.
//! * [`federation`] — the fleet scrape plane: a central scraper federating
//!   per-cell monitors over the WAN with fan-in batching, bounded in-flight
//!   windows and staleness accounting, feeding fleet-level SLO rules.
//! * [`paging`] — alert routing: a paging gateway with declarative route
//!   policies, retry/backoff, dedup and escalation, so the notification
//!   path has its own simulable delivery SLO.
//! * [`chaos`] — the fault-schedule engine: declarative [`chaos::ChaosPlan`]s
//!   (partitions, loss/corruption/duplication/reorder bursts, crash windows,
//!   clock skew, scrape blackouts) compiled into simulator events on salted
//!   RNG streams so any run is byte-replayable from `(seed, plan)`, plus the
//!   [`chaos::Invariant`] registry and the plan shrinker.
//!
//! Determinism: a simulation is a pure function of its seed and setup. All
//! randomness flows from the seed; the event queue breaks time ties by
//! insertion sequence. Running the same scenario twice yields byte-identical
//! traces, which the tests assert.
//!
//! ```
//! use pdagent_net::prelude::*;
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
//!         ctx.send(from, Message::new("echo", msg.body));
//!     }
//! }
//!
//! struct Caller { peer: NodeId, reply_at: Option<SimTime> }
//! impl Node for Caller {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.send(self.peer, Message::new("ping", b"hello".to_vec()));
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, _msg: Message) {
//!         self.reply_at = Some(ctx.now());
//!     }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let echo = sim.add_node(Box::new(Echo));
//! let caller = sim.add_node(Box::new(Caller { peer: echo, reply_at: None }));
//! sim.connect(caller, echo, LinkSpec::lan());
//! sim.run_until_idle();
//! assert!(sim.node_ref::<Caller>(caller).unwrap().reply_at.is_some());
//! ```

pub mod chaos;
pub mod federation;
pub mod http;
pub mod link;
pub mod message;
pub mod metrics;
pub mod obs;
pub mod paging;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod slo;
pub mod telemetry;
pub mod time;
pub mod trace;

/// Convenient glob import for protocol crates.
pub mod prelude {
    pub use crate::chaos::{
        shrink_plan, ChaosInjector, ChaosPlan, CheckPhase, Fault, FaultKind, Invariant,
        InvariantRegistry, Violation,
    };
    pub use crate::federation::{
        FederationReport, FederationRollup, FederationScraper, FederationSpec,
    };
    pub use crate::http::{HttpRequest, HttpResponse, HttpStatus};
    pub use crate::paging::{
        PageReceiver, PagingGateway, PagingReport, Route, RoutePolicy, Severity,
    };
    pub use crate::link::{ChaosOverlay, LinkSpec};
    pub use crate::message::{Kind, Message};
    pub use crate::metrics::Metrics;
    pub use crate::obs::{Histogram, ObsContext, ObsEvent, ObsSummary};
    pub use crate::queue::Scheduler;
    pub use crate::rng::SimRng;
    pub use crate::sim::{Ctx, Node, NodeId, Simulator};
    pub use crate::slo::{MonitorSpec, SloEngine, SloMonitor, SloReport, SloRule, SloSignal};
    pub use crate::telemetry::{
        parse_prom, render_prom, FlightRecorder, TelemetrySnapshot, PATH_HEALTHZ, PATH_METRICS,
    };
    pub use crate::time::{SimDuration, SimTime};
}

pub use prelude::*;
