//! The message envelope: everything that crosses a link is bytes plus a kind
//! tag, mirroring the paper's wire-format discipline (XML payloads over
//! HTTP). Protocol layers serialize into [`Message::body`].

/// Fixed per-message framing overhead charged by the link model, standing in
/// for transport headers (TCP/IP + HTTP line noise).
pub const FRAME_OVERHEAD: usize = 40;

/// A network message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Protocol discriminator, e.g. `"http.request"`, `"mas.transfer"`.
    pub kind: String,
    /// Serialized payload.
    pub body: Vec<u8>,
}

impl Message {
    /// Construct a message.
    pub fn new(kind: impl Into<String>, body: Vec<u8>) -> Message {
        Message { kind: kind.into(), body }
    }

    /// A zero-payload message (probes, acks).
    pub fn signal(kind: impl Into<String>) -> Message {
        Message { kind: kind.into(), body: Vec::new() }
    }

    /// Bytes this message occupies on the wire, including framing.
    pub fn wire_size(&self) -> usize {
        FRAME_OVERHEAD + self.kind.len() + self.body.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_overhead() {
        let m = Message::new("x", vec![0u8; 100]);
        assert_eq!(m.wire_size(), FRAME_OVERHEAD + 1 + 100);
        let s = Message::signal("ping");
        assert_eq!(s.wire_size(), FRAME_OVERHEAD + 4);
        assert!(s.body.is_empty());
    }

    #[test]
    fn construction() {
        let m = Message::new(String::from("kind"), b"body".to_vec());
        assert_eq!(m.kind, "kind");
        assert_eq!(m.body, b"body");
    }
}
