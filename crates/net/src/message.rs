//! The message envelope: everything that crosses a link is bytes plus a kind
//! tag, mirroring the paper's wire-format discipline (XML payloads over
//! HTTP). Protocol layers serialize into [`Message::body`].
//!
//! Both fields are built for the simulator's hot path: [`Kind`] is an
//! interned `Arc<str>` (cloning a message kind is a refcount bump, and
//! repeated kinds — there are only a dozen protocol discriminators — share
//! one allocation process-wide), and the body is a [`Bytes`] buffer, so link
//! transit, retransmission queues, replay caches and trace capture all alias
//! one allocation instead of deep-copying the payload.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

use bytes::Bytes;

use crate::obs::ObsContext;

/// Fixed per-message framing overhead charged by the link model, standing in
/// for transport headers (TCP/IP + HTTP line noise).
pub const FRAME_OVERHEAD: usize = 40;

/// Process-wide intern table. Simulations only ever use a handful of kind
/// strings, so this stays tiny; the lock is taken on construction from a
/// string, never on clone/compare in the event loop.
fn intern_table() -> &'static Mutex<HashSet<Arc<str>>> {
    static TABLE: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashSet::new()))
}

/// An interned protocol discriminator, e.g. `"http.request"`.
///
/// Equal kinds share one allocation, so `Clone` is a refcount bump and
/// equality is usually a pointer comparison. Compares transparently against
/// `&str` and derefs to `str`.
#[derive(Debug, Clone)]
pub struct Kind(Arc<str>);

impl Kind {
    /// Intern `s`, returning the canonical shared handle for that spelling.
    pub fn intern(s: &str) -> Kind {
        let mut table = intern_table().lock().expect("kind intern table poisoned");
        if let Some(existing) = table.get(s) {
            return Kind(Arc::clone(existing));
        }
        let arc: Arc<str> = Arc::from(s);
        table.insert(Arc::clone(&arc));
        Kind(arc)
    }

    /// The kind as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Length in bytes (contributes to [`Message::wire_size`]).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty kind.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl PartialEq for Kind {
    fn eq(&self, other: &Kind) -> bool {
        // Interning makes pointer equality the common case; the slice
        // comparison only runs for kinds from different intern generations
        // (never happens with a single process-wide table, but stay correct).
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}
impl Eq for Kind {}

impl std::hash::Hash for Kind {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialEq<str> for Kind {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}
impl PartialEq<&str> for Kind {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}
impl PartialEq<Kind> for str {
    fn eq(&self, other: &Kind) -> bool {
        self == &*other.0
    }
}
impl PartialEq<Kind> for &str {
    fn eq(&self, other: &Kind) -> bool {
        *self == &*other.0
    }
}
impl PartialEq<String> for Kind {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl Deref for Kind {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Kind {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Kind {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Kind {
    fn from(s: &str) -> Kind {
        Kind::intern(s)
    }
}

impl From<&String> for Kind {
    fn from(s: &String) -> Kind {
        Kind::intern(s)
    }
}

impl From<String> for Kind {
    fn from(s: String) -> Kind {
        Kind::intern(&s)
    }
}

/// A network message.
///
/// `Clone` is cheap by construction (refcount bumps on both fields); protocol
/// layers hand the same body allocation from serialization through link
/// transit, retransmission buffers and trace capture.
#[derive(Debug, Clone, Eq)]
pub struct Message {
    /// Protocol discriminator, e.g. `"http.request"`, `"mas.transfer"`.
    pub kind: Kind,
    /// Serialized payload (shared, immutable).
    pub body: Bytes,
    /// Observability metadata (trace id + parent span). Rides in the modeled
    /// [`FRAME_OVERHEAD`] headers: a `Copy` of two integers that contributes
    /// nothing to [`Message::wire_size`], the payload serialization, or
    /// message equality — link timing and results are identical with or
    /// without tracing.
    pub obs: ObsContext,
}

/// Equality covers the wire content (kind + body); the [`ObsContext`]
/// metadata is deliberately excluded so traced and untraced runs compare
/// messages identically.
impl PartialEq for Message {
    fn eq(&self, other: &Message) -> bool {
        self.kind == other.kind && self.body == other.body
    }
}

impl Message {
    /// Construct a message (untraced; see [`Message::traced`]).
    pub fn new(kind: impl Into<Kind>, body: impl Into<Bytes>) -> Message {
        Message { kind: kind.into(), body: body.into(), obs: ObsContext::NONE }
    }

    /// A zero-payload message (probes, acks).
    pub fn signal(kind: impl Into<Kind>) -> Message {
        Message { kind: kind.into(), body: Bytes::new(), obs: ObsContext::NONE }
    }

    /// Attach observability metadata (builder-style).
    pub fn traced(mut self, obs: ObsContext) -> Message {
        self.obs = obs;
        self
    }

    /// Bytes this message occupies on the wire, including framing.
    pub fn wire_size(&self) -> usize {
        FRAME_OVERHEAD + self.kind.len() + self.body.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_overhead() {
        let m = Message::new("x", vec![0u8; 100]);
        assert_eq!(m.wire_size(), FRAME_OVERHEAD + 1 + 100);
        let s = Message::signal("ping");
        assert_eq!(s.wire_size(), FRAME_OVERHEAD + 4);
        assert!(s.body.is_empty());
    }

    #[test]
    fn construction() {
        let m = Message::new(String::from("kind"), b"body".to_vec());
        assert_eq!(m.kind, "kind");
        assert_eq!(m.body, b"body"[..]);
    }

    #[test]
    fn kinds_are_interned() {
        let a = Kind::intern("mas.transfer");
        let b = Kind::from("mas.transfer");
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.0, &b.0), "equal kinds share one allocation");
        assert_ne!(a, Kind::intern("mas.complete"));
        assert_eq!(a.as_str(), "mas.transfer");
        assert_eq!(a, "mas.transfer");
        assert_eq!("mas.transfer", a);
        assert_eq!(format!("{a}"), "mas.transfer");
    }

    #[test]
    fn obs_metadata_is_invisible_on_the_wire() {
        use crate::obs::ObsContext;
        let plain = Message::new("x", b"payload".to_vec());
        let traced = plain.clone().traced(ObsContext { trace: 7, span: 3 });
        assert_eq!(traced.obs.trace, 7);
        assert_eq!(plain.wire_size(), traced.wire_size());
        assert_eq!(plain, traced, "obs metadata must not affect equality");
        assert!(Message::signal("ack").obs.is_none());
    }

    #[test]
    fn message_clone_aliases_body() {
        let m = Message::new("bulk", vec![7u8; 1 << 16]);
        let c = m.clone();
        assert!(m.body.shares_allocation_with(&c.body), "clone must not deep-copy");
        assert_eq!(m, c);
    }
}
