//! Alert routing: the paging gateway, route policies and page receivers.
//!
//! Alert edges from the SLO engines ([`crate::slo`], [`crate::federation`])
//! land in the obs collector and the flight recorder, but ROADMAP's open
//! item wants the *notification path itself* to be simulable: pages are
//! messages with their own delivery SLO, and escalation policy is a protocol
//! you can get wrong. This module models that path:
//!
//! * Alert sources send [`page_fire`]/[`page_resolve`] messages to a
//!   [`PagingGateway`] node over ordinary simulated links.
//! * The gateway dedups by `(rule, instance)` key, classifies the rule's
//!   severity via a declarative [`RoutePolicy`], and delivers a
//!   `page.deliver` message to the route's primary [`PageReceiver`], with
//!   retry/backoff until the receiver acks.
//! * Unacked pages escalate after `escalate_after` unacked ticks to the
//!   route's escalation receiver; pages that exhaust every attempt are
//!   *dropped* — the one counter a healthy fleet must keep at zero
//!   (`scripts/bench_diff.sh` gates on it).
//!
//! Every page episode is a `page.deliver` span on the alert's trace (so
//! fire→ack latency lands in the stage histograms and the flight recorder),
//! and the gateway counts `page.delivered` / `page.escalated` /
//! `page.dropped` / `page.deduped` in its metrics. All timers are bounded —
//! a page retries at most `max_attempts` times per target and ticks at most
//! `escalate_after` times — so simulations always drain.

use std::collections::HashMap;

use pdagent_codec::varint;

use crate::http::HttpRequest;
use crate::message::Message;
use crate::obs::Histogram;
use crate::sim::{Ctx, Node, NodeId};
use crate::telemetry::TelemetryServer;
use crate::time::{SimDuration, SimTime};

/// Message kind of an alert-edge notification (source → gateway).
pub const KIND_PAGE_FIRE: &str = "page.fire";
/// Message kind of an alert-resolved notification (source → gateway).
pub const KIND_PAGE_RESOLVE: &str = "page.resolve";
/// Message kind of a page delivery (gateway → receiver).
pub const KIND_PAGE_DELIVER: &str = "page.deliver";
/// Message kind of a page acknowledgement (receiver → gateway).
pub const KIND_PAGE_ACK: &str = "page.ack";

/// Page severity, routed independently by [`RoutePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Wake somebody up.
    Critical,
    /// Page during business hours.
    Major,
    /// Ticket-only.
    Minor,
}

/// One severity's delivery route.
#[derive(Debug, Clone)]
pub struct Route {
    /// The severity this route serves.
    pub severity: Severity,
    /// Primary on-call receiver.
    pub target: NodeId,
    /// Escalation receiver, tried after `escalate_after` unacked ticks.
    pub escalation: Option<NodeId>,
    /// Unacked escalation ticks before the escalation receiver is paged.
    pub escalate_after: u32,
    /// Delivery attempts per receiver before giving up on it.
    pub max_attempts: u32,
    /// Initial retry backoff; doubles per attempt.
    pub backoff: SimDuration,
}

impl Route {
    /// A route with production-ish defaults: 3 attempts, 30 s backoff,
    /// escalation after 2 unacked ticks.
    pub fn new(severity: Severity, target: NodeId) -> Route {
        Route {
            severity,
            target,
            escalation: None,
            escalate_after: 2,
            max_attempts: 3,
            backoff: SimDuration::from_secs(30),
        }
    }

    /// Attach an escalation receiver (builder-style).
    pub fn with_escalation(mut self, node: NodeId) -> Route {
        self.escalation = Some(node);
        self
    }
}

/// Declarative alert routing: rule-name prefixes map to severities, each
/// severity to a [`Route`]. Rules matching no prefix get `default_severity`;
/// severities with no route are dropped (counted, never silently).
#[derive(Debug, Clone)]
pub struct RoutePolicy {
    /// `(rule-name prefix, severity)` — first match wins.
    pub severities: Vec<(String, Severity)>,
    /// Severity for rules matching no prefix.
    pub default_severity: Severity,
    /// One route per severity (first match wins).
    pub routes: Vec<Route>,
    /// Escalation tick interval.
    pub tick: SimDuration,
}

impl RoutePolicy {
    /// A policy routing every rule at `default_severity` through `routes`.
    pub fn new(routes: Vec<Route>) -> RoutePolicy {
        RoutePolicy {
            severities: Vec::new(),
            default_severity: Severity::Critical,
            routes,
            tick: SimDuration::from_secs(60),
        }
    }

    /// Map a rule name to its severity.
    pub fn classify(&self, rule: &str) -> Severity {
        self.severities
            .iter()
            .find(|(prefix, _)| rule.starts_with(prefix.as_str()))
            .map(|(_, s)| *s)
            .unwrap_or(self.default_severity)
    }

    /// The route serving `severity`, if any.
    pub fn route_for(&self, severity: Severity) -> Option<&Route> {
        self.routes.iter().find(|r| r.severity == severity)
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    varint::write_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn read_str(input: &[u8], pos: &mut usize) -> Option<String> {
    let len = varint::read_usize(input, pos).ok()?;
    let end = pos.checked_add(len)?;
    if end > input.len() {
        return None;
    }
    let s = std::str::from_utf8(&input[*pos..end]).ok()?.to_owned();
    *pos = end;
    Some(s)
}

/// Build the alert-fired notification an SLO engine host sends its pager.
/// Floats travel as raw bits, so the page carries the exact observed value.
/// `exemplar` is the offending trace id behind the breached signal (0 =
/// none) — it rides the page all the way to the on-call's hand.
pub fn page_fire(
    rule: &str,
    instance: &str,
    value: f64,
    limit: f64,
    trace: u64,
    exemplar: u64,
) -> Message {
    let mut body = Vec::with_capacity(rule.len() + instance.len() + 40);
    write_str(&mut body, rule);
    write_str(&mut body, instance);
    varint::write_u64(&mut body, value.to_bits());
    varint::write_u64(&mut body, limit.to_bits());
    varint::write_u64(&mut body, trace);
    varint::write_u64(&mut body, exemplar);
    Message::new(KIND_PAGE_FIRE, body)
}

/// Build the alert-resolved notification.
pub fn page_resolve(rule: &str, instance: &str) -> Message {
    let mut body = Vec::with_capacity(rule.len() + instance.len() + 8);
    write_str(&mut body, rule);
    write_str(&mut body, instance);
    Message::new(KIND_PAGE_RESOLVE, body)
}

/// A delivered page, as a receiver decodes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageDelivery {
    /// Gateway-assigned page id (echo it in the ack).
    pub id: u64,
    /// True when this delivery went to the escalation receiver.
    pub escalated: bool,
    /// Rule that fired.
    pub rule: String,
    /// Instance the rule fired for.
    pub instance: String,
    /// Exemplar trace id behind the breached signal (0 = none) — resolvable
    /// against the cell's `/traces` query plane.
    pub exemplar: u64,
}

/// Decode a `page.deliver` message (receiver side).
pub fn parse_delivery(msg: &Message) -> Option<PageDelivery> {
    if msg.kind != KIND_PAGE_DELIVER {
        return None;
    }
    let mut pos = 0;
    let id = varint::read_u64(&msg.body, &mut pos).ok()?;
    let escalated = varint::read_u64(&msg.body, &mut pos).ok()? != 0;
    let rule = read_str(&msg.body, &mut pos)?;
    let instance = read_str(&msg.body, &mut pos)?;
    let exemplar = varint::read_u64(&msg.body, &mut pos).unwrap_or(0);
    Some(PageDelivery { id, escalated, rule, instance, exemplar })
}

/// Build the acknowledgement for a delivered page.
pub fn page_ack(id: u64) -> Message {
    let mut body = Vec::with_capacity(8);
    varint::write_u64(&mut body, id);
    Message::new(KIND_PAGE_ACK, body)
}

fn parse_fire(msg: &Message) -> Option<(String, String, f64, f64, u64, u64)> {
    let mut pos = 0;
    let rule = read_str(&msg.body, &mut pos)?;
    let instance = read_str(&msg.body, &mut pos)?;
    let value = f64::from_bits(varint::read_u64(&msg.body, &mut pos).ok()?);
    let limit = f64::from_bits(varint::read_u64(&msg.body, &mut pos).ok()?);
    let trace = varint::read_u64(&msg.body, &mut pos).ok()?;
    let exemplar = varint::read_u64(&msg.body, &mut pos).unwrap_or(0);
    Some((rule, instance, value, limit, trace, exemplar))
}

fn parse_resolve(msg: &Message) -> Option<(String, String)> {
    let mut pos = 0;
    Some((read_str(&msg.body, &mut pos)?, read_str(&msg.body, &mut pos)?))
}

/// One open page episode.
#[derive(Debug)]
struct PageState {
    id: u64,
    rule: String,
    instance: String,
    trace: u64,
    exemplar: u64,
    fired_at: SimTime,
    /// Attempts against the *current* receiver (reset on escalation).
    attempts: u32,
    unacked_ticks: u32,
    escalated: bool,
    span: u32,
    route: usize,
}

/// Aggregate paging outcome for reports.
#[derive(Debug, Clone)]
pub struct PagingReport {
    /// Pages opened (deduped fires excluded).
    pub fired: u64,
    /// Pages acknowledged by a receiver.
    pub delivered: u64,
    /// Pages escalated past the primary receiver.
    pub escalated: u64,
    /// Pages that exhausted every receiver — must be zero in a healthy run.
    pub dropped: u64,
    /// Fires suppressed by an already-open page with the same dedup key.
    pub deduped: u64,
    /// Pages closed by an alert-resolved edge before any ack.
    pub resolved: u64,
    /// Fire→ack latency histogram (µs).
    pub delivery: Histogram,
}

/// The paging gateway node. See the module docs for the protocol.
#[derive(Debug)]
pub struct PagingGateway {
    policy: RoutePolicy,
    /// dedup key (`rule\x1finstance`) → open page.
    open: HashMap<String, PageState>,
    /// page id → dedup key.
    by_id: HashMap<u64, String>,
    next_id: u64,
    /// Pages opened.
    pub fired: u64,
    /// Pages acked.
    pub delivered: u64,
    /// Pages escalated.
    pub escalated: u64,
    /// Pages that exhausted every receiver.
    pub dropped: u64,
    /// Duplicate fires suppressed.
    pub deduped: u64,
    /// Pages closed by a resolve edge before any ack.
    pub resolved: u64,
    /// Fire→ack latency (µs).
    pub delivery: Histogram,
    /// Delta-capable `/metrics` server — the gateway is a scrape target like
    /// any other node, so the notification path's own delivery SLO
    /// (`page.deliver` stage latency, `page.*` counters) can be monitored.
    telemetry: TelemetryServer,
    /// Instance label for the served exposition.
    instance: String,
}

fn dedup_key(rule: &str, instance: &str) -> String {
    format!("{rule}\x1f{instance}")
}

impl PagingGateway {
    /// Gateway applying `policy`.
    pub fn new(policy: RoutePolicy) -> PagingGateway {
        PagingGateway {
            policy,
            open: HashMap::new(),
            by_id: HashMap::new(),
            next_id: 1,
            fired: 0,
            delivered: 0,
            escalated: 0,
            dropped: 0,
            deduped: 0,
            resolved: 0,
            delivery: Histogram::new(),
            telemetry: TelemetryServer::new(),
            instance: "pager".to_owned(),
        }
    }

    /// Instance label for the served `/metrics` exposition (builder-style;
    /// defaults to `"pager"`).
    pub fn with_instance(mut self, instance: &str) -> PagingGateway {
        self.instance = instance.to_owned();
        self
    }

    /// Aggregate outcome for reports.
    pub fn report(&self) -> PagingReport {
        PagingReport {
            fired: self.fired,
            delivered: self.delivered,
            escalated: self.escalated,
            dropped: self.dropped,
            deduped: self.deduped,
            resolved: self.resolved,
            delivery: self.delivery.clone(),
        }
    }

    /// Pages currently open (unacked, undropped).
    pub fn open_pages(&self) -> usize {
        self.open.len()
    }

    fn deliver(&self, ctx: &mut Ctx<'_>, page: &PageState) {
        let route = &self.policy.routes[page.route];
        let to = if page.escalated {
            route.escalation.expect("escalated page has an escalation receiver")
        } else {
            route.target
        };
        let mut body = Vec::with_capacity(page.rule.len() + page.instance.len() + 24);
        varint::write_u64(&mut body, page.id);
        varint::write_u64(&mut body, u64::from(page.escalated));
        write_str(&mut body, &page.rule);
        write_str(&mut body, &page.instance);
        varint::write_u64(&mut body, page.exemplar);
        ctx.send(to, Message::new(KIND_PAGE_DELIVER, body));
        ctx.metrics().bump("page.sent", 1.0);
    }

    fn close(&mut self, key: &str) {
        if let Some(page) = self.open.remove(key) {
            self.by_id.remove(&page.id);
        }
    }

    fn on_fire(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        let Some((rule, instance, _value, _limit, trace, exemplar)) = parse_fire(msg) else {
            return;
        };
        let key = dedup_key(&rule, &instance);
        if self.open.contains_key(&key) {
            self.deduped += 1;
            ctx.metrics().bump("page.deduped", 1.0);
            return;
        }
        let severity = self.policy.classify(&rule);
        let Some(route_idx) = self.policy.routes.iter().position(|r| r.severity == severity)
        else {
            // No route for this severity: the page has nowhere to go.
            self.dropped += 1;
            ctx.metrics().bump("page.dropped", 1.0);
            return;
        };
        let id = self.next_id;
        self.next_id += 1;
        let span = ctx.span_begin(trace, 0, "page.deliver");
        let page = PageState {
            id,
            rule,
            instance,
            trace,
            exemplar,
            fired_at: ctx.now(),
            attempts: 1,
            unacked_ticks: 0,
            escalated: false,
            span,
            route: route_idx,
        };
        self.fired += 1;
        ctx.metrics().bump("page.fired", 1.0);
        self.deliver(ctx, &page);
        let route = &self.policy.routes[route_idx];
        ctx.set_timer(route.backoff, id * 2);
        ctx.set_timer(self.policy.tick, id * 2 + 1);
        self.by_id.insert(id, key.clone());
        self.open.insert(key, page);
    }

    fn on_resolve(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        let Some((rule, instance)) = parse_resolve(msg) else { return };
        let key = dedup_key(&rule, &instance);
        if let Some(page) = self.open.get(&key) {
            ctx.span_end(page.span);
            self.resolved += 1;
            ctx.metrics().bump("page.resolved", 1.0);
            self.close(&key);
        }
    }

    fn on_ack(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        let mut pos = 0;
        let Ok(id) = varint::read_u64(&msg.body, &mut pos) else { return };
        let Some(key) = self.by_id.get(&id).cloned() else { return };
        let Some(page) = self.open.get(&key) else { return };
        self.delivery.record(ctx.now().since(page.fired_at).0);
        ctx.span_end(page.span);
        self.delivered += 1;
        ctx.metrics().bump("page.delivered", 1.0);
        self.close(&key);
    }

    /// Retry timer for page `id`: re-deliver with doubled backoff, or — once
    /// attempts are exhausted — drop the page unless escalation is still
    /// ahead of it.
    fn on_retry(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        let Some(key) = self.by_id.get(&id).cloned() else { return };
        let Some(page) = self.open.get_mut(&key) else { return };
        let route = self.policy.routes[page.route].clone();
        if page.attempts >= route.max_attempts {
            if !page.escalated && route.escalation.is_some() {
                // Primary exhausted; hold the page for the escalation tick.
                ctx.metrics().bump("page.exhausted", 1.0);
                return;
            }
            ctx.span_end(page.span);
            self.dropped += 1;
            ctx.metrics().bump("page.dropped", 1.0);
            self.close(&key);
            return;
        }
        page.attempts += 1;
        let backoff =
            SimDuration::from_micros(route.backoff.as_micros() << (page.attempts - 1).min(8));
        ctx.metrics().bump("page.retries", 1.0);
        let page = &self.open[&key];
        self.deliver(ctx, page);
        ctx.set_timer(backoff, id * 2);
    }

    /// Escalation tick for page `id`.
    fn on_tick(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        let Some(key) = self.by_id.get(&id).cloned() else { return };
        let Some(page) = self.open.get_mut(&key) else { return };
        if page.escalated {
            return;
        }
        page.unacked_ticks += 1;
        let route = self.policy.routes[page.route].clone();
        if page.unacked_ticks >= route.escalate_after {
            if route.escalation.is_some() {
                page.escalated = true;
                page.attempts = 1;
                let trace = page.trace;
                self.escalated += 1;
                ctx.metrics().bump("page.escalated", 1.0);
                let span = ctx.span_begin(trace, 0, "page.escalate");
                ctx.span_end(span);
                let page = &self.open[&key];
                self.deliver(ctx, page);
                ctx.set_timer(route.backoff, id * 2);
            } else {
                ctx.span_end(page.span);
                self.dropped += 1;
                ctx.metrics().bump("page.dropped", 1.0);
                self.close(&key);
            }
        } else {
            ctx.set_timer(self.policy.tick, id * 2 + 1);
        }
    }
}

impl Node for PagingGateway {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        // The gateway is a scrape target: a monitor probing the notification
        // path's own delivery SLO hits `/metrics`/`/healthz` here.
        if let Some(req) = HttpRequest::from_message(&msg) {
            let instance = std::mem::take(&mut self.instance);
            self.telemetry.serve(ctx, from, &req, &instance);
            self.instance = instance;
            return;
        }
        if msg.kind == KIND_PAGE_FIRE {
            self.on_fire(ctx, &msg);
        } else if msg.kind == KIND_PAGE_RESOLVE {
            self.on_resolve(ctx, &msg);
        } else if msg.kind == KIND_PAGE_ACK {
            self.on_ack(ctx, &msg);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let id = tag / 2;
        if tag.is_multiple_of(2) {
            self.on_retry(ctx, id);
        } else {
            self.on_tick(ctx, id);
        }
    }
}

/// An on-call receiver: acks every delivered page after `ack_delay` (the
/// human pickup time), or never acks when `ack_delay` is `None` — the
/// sleeping-primary scenario escalation tests use.
#[derive(Debug)]
pub struct PageReceiver {
    /// Time from delivery to ack; `None` never acks.
    pub ack_delay: Option<SimDuration>,
    /// Pages received (escalated re-deliveries included).
    pub received: u64,
    /// Escalated deliveries received.
    pub received_escalated: u64,
    /// Deliveries that carried a nonzero exemplar trace id — the on-call's
    /// jump-off point into the `/traces` query plane.
    pub exemplar_pages: u64,
    /// page id → paging gateway awaiting the ack.
    pending: HashMap<u64, NodeId>,
}

impl PageReceiver {
    /// Receiver acking after `ack_delay` (`None` = never).
    pub fn new(ack_delay: Option<SimDuration>) -> PageReceiver {
        PageReceiver {
            ack_delay,
            received: 0,
            received_escalated: 0,
            exemplar_pages: 0,
            pending: HashMap::new(),
        }
    }
}

impl Node for PageReceiver {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let Some(page) = parse_delivery(&msg) else { return };
        self.received += 1;
        if page.escalated {
            self.received_escalated += 1;
        }
        if page.exemplar != 0 {
            self.exemplar_pages += 1;
        }
        ctx.metrics().bump("pager.received", 1.0);
        if let Some(delay) = self.ack_delay {
            // Re-deliveries of the same page just re-arm nothing: one ack
            // per page id is enough, and acks for closed pages are ignored.
            if self.pending.insert(page.id, from).is_none() {
                ctx.set_timer(delay, page.id);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if let Some(gateway) = self.pending.remove(&tag) {
            ctx.send(gateway, page_ack(tag));
            ctx.metrics().bump("pager.acked", 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::sim::Simulator;

    #[test]
    fn page_codec_round_trips() {
        let fire = page_fire("burn", "gw-0", 1.5, 0.5, 42, 17);
        assert_eq!(parse_fire(&fire), Some(("burn".into(), "gw-0".into(), 1.5, 0.5, 42, 17)));
        let resolve = page_resolve("burn", "gw-0");
        assert_eq!(parse_resolve(&resolve), Some(("burn".into(), "gw-0".into())));
    }

    #[test]
    fn policy_classifies_by_prefix_with_default() {
        let mut policy = RoutePolicy::new(vec![]);
        policy.severities = vec![
            ("fed-".into(), Severity::Major),
            ("drop-".into(), Severity::Critical),
        ];
        policy.default_severity = Severity::Minor;
        assert_eq!(policy.classify("fed-staleness-max"), Severity::Major);
        assert_eq!(policy.classify("drop-burn-rate"), Severity::Critical);
        assert_eq!(policy.classify("anything-else"), Severity::Minor);
    }

    /// A tiny paging cluster: an alert source is simulated by injecting
    /// `page.fire` from a stub node.
    struct FireOnce {
        gateway: NodeId,
        resolve_at: Option<SimDuration>,
    }
    impl Node for FireOnce {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(10), 0);
            if let Some(at) = self.resolve_at {
                ctx.set_timer(at, 1);
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _msg: Message) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
            if tag == 0 {
                ctx.send(self.gateway, page_fire("drop-burn", "gw-0", 2.0, 1.0, 7, 0));
                // A duplicate fire right behind the first must dedup.
                ctx.send(self.gateway, page_fire("drop-burn", "gw-0", 2.0, 1.0, 7, 0));
            } else {
                ctx.send(self.gateway, page_resolve("drop-burn", "gw-0"));
            }
        }
    }

    fn cluster(
        primary_acks: bool,
        escalation: bool,
        resolve_at: Option<SimDuration>,
    ) -> (Simulator, NodeId, NodeId, NodeId) {
        let mut sim = Simulator::new(7);
        let primary = sim.add_node(Box::new(PageReceiver::new(
            primary_acks.then(|| SimDuration::from_secs(5)),
        )));
        let esc = sim.add_node(Box::new(PageReceiver::new(Some(SimDuration::from_secs(2)))));
        let mut route = Route::new(Severity::Critical, primary);
        route.backoff = SimDuration::from_secs(20);
        if escalation {
            route = route.with_escalation(esc);
        }
        let mut policy = RoutePolicy::new(vec![route]);
        policy.tick = SimDuration::from_secs(30);
        let gateway = sim.add_node(Box::new(PagingGateway::new(policy)));
        let source = sim.add_node(Box::new(FireOnce { gateway, resolve_at }));
        for (a, b) in [(source, gateway), (gateway, primary), (gateway, esc)] {
            sim.connect(a, b, LinkSpec::lan());
        }
        (sim, gateway, primary, esc)
    }

    #[test]
    fn acked_page_is_delivered_and_escalation_suppressed() {
        let (mut sim, gateway, primary, esc) = cluster(true, true, None);
        sim.run_until_idle();
        let gw = sim.node_ref::<PagingGateway>(gateway).unwrap();
        assert_eq!(gw.fired, 1);
        assert_eq!(gw.deduped, 1, "duplicate fire must dedup");
        assert_eq!(gw.delivered, 1);
        assert_eq!(gw.escalated, 0, "ack within the window suppresses escalation");
        assert_eq!(gw.dropped, 0);
        assert_eq!(gw.open_pages(), 0);
        assert!(gw.delivery.count() == 1 && gw.delivery.max() >= 5_000_000);
        assert_eq!(sim.node_ref::<PageReceiver>(primary).unwrap().received, 1);
        assert_eq!(sim.node_ref::<PageReceiver>(esc).unwrap().received, 0);
    }

    #[test]
    fn unacked_page_escalates_and_escalation_ack_closes_it() {
        let (mut sim, gateway, primary, esc) = cluster(false, true, None);
        sim.run_until_idle();
        let gw = sim.node_ref::<PagingGateway>(gateway).unwrap();
        assert_eq!(gw.fired, 1);
        assert_eq!(gw.escalated, 1, "sleeping primary must escalate");
        assert_eq!(gw.delivered, 1, "escalation receiver's ack closes the page");
        assert_eq!(gw.dropped, 0);
        assert_eq!(gw.open_pages(), 0);
        let p = sim.node_ref::<PageReceiver>(primary).unwrap();
        assert!(p.received >= 1 && p.received_escalated == 0);
        let e = sim.node_ref::<PageReceiver>(esc).unwrap();
        assert_eq!(e.received_escalated, 1);
    }

    #[test]
    fn page_with_no_ack_anywhere_is_dropped_and_sim_drains() {
        let mut sim = Simulator::new(9);
        let primary = sim.add_node(Box::new(PageReceiver::new(None)));
        let mut route = Route::new(Severity::Critical, primary);
        route.backoff = SimDuration::from_secs(10);
        route.max_attempts = 2;
        let mut policy = RoutePolicy::new(vec![route]);
        policy.tick = SimDuration::from_secs(30);
        let gateway = sim.add_node(Box::new(PagingGateway::new(policy)));
        let source = sim.add_node(Box::new(FireOnce { gateway, resolve_at: None }));
        sim.connect(source, gateway, LinkSpec::lan());
        sim.connect(gateway, primary, LinkSpec::lan());
        sim.run_until_idle();
        let gw = sim.node_ref::<PagingGateway>(gateway).unwrap();
        assert_eq!(gw.dropped, 1, "no escalation and no ack must drop");
        assert_eq!(gw.delivered, 0);
        assert_eq!(gw.open_pages(), 0, "dropped pages close");
    }

    #[test]
    fn resolve_before_ack_closes_the_page_silently() {
        let (mut sim, gateway, _primary, _esc) =
            cluster(false, true, Some(SimDuration::from_secs(3)));
        sim.run_until_idle();
        let gw = sim.node_ref::<PagingGateway>(gateway).unwrap();
        assert_eq!(gw.resolved, 1, "resolve edge must close the open page");
        assert_eq!(gw.delivered, 0);
        assert_eq!(gw.dropped, 0);
        assert_eq!(gw.open_pages(), 0);
    }
}
