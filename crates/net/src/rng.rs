//! Seeded randomness and the latency-jitter distributions.
//!
//! All stochastic behaviour in a simulation (jitter samples, loss draws)
//! flows through one [`SimRng`] owned by the simulator, so a scenario is a
//! pure function of its seed. The paper's "trials" (Figure 13) are seeds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// The simulation RNG. A thin wrapper around a seeded [`StdRng`] plus the
/// distribution helpers the link model needs.
#[derive(Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> SimRng {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Fork an independent stream (used to give subsystems their own RNG
    /// without perturbing the main event stream).
    pub fn fork(&mut self, label: u64) -> SimRng {
        SimRng { inner: StdRng::seed_from_u64(self.inner.gen::<u64>() ^ label) }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Exponentially distributed duration with the given mean. This is the
    /// canonical heavy-ish tail for queueing-induced network jitter.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        if mean == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let u = self.unit().max(1e-12);
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// Approximately normal duration (Irwin–Hall with 6 uniforms), clamped
    /// at zero. Used for mild wired-link jitter.
    pub fn normal_duration(&mut self, mean: SimDuration, sigma: SimDuration) -> SimDuration {
        let sum: f64 = (0..6).map(|_| self.unit()).sum();
        // Irwin-Hall(6): mean 3, var 0.5 → standardize.
        let z = (sum - 3.0) / (0.5f64).sqrt();
        let val = mean.as_secs_f64() + z * sigma.as_secs_f64();
        SimDuration::from_secs_f64(val)
    }

    /// Uniform duration in `[lo, hi)`.
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        if hi <= lo {
            return lo;
        }
        SimDuration(self.range_u64(lo.as_micros(), hi.as_micros()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..50).filter(|_| a.range_u64(0, 1000) == b.range_u64(0, 1000)).count();
        assert!(same < 10);
    }

    #[test]
    fn exp_duration_mean_is_close() {
        let mut rng = SimRng::new(3);
        let mean = SimDuration::from_millis(60);
        let n = 20_000;
        let total: f64 =
            (0..n).map(|_| rng.exp_duration(mean).as_secs_f64()).sum();
        let sample_mean = total / n as f64;
        assert!((sample_mean - 0.060).abs() < 0.002, "sample mean {sample_mean}");
    }

    #[test]
    fn exp_zero_mean_is_zero() {
        let mut rng = SimRng::new(4);
        assert_eq!(rng.exp_duration(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn normal_duration_mean_and_clamp() {
        let mut rng = SimRng::new(5);
        let mean = SimDuration::from_millis(10);
        let sigma = SimDuration::from_millis(2);
        let n = 10_000;
        let total: f64 =
            (0..n).map(|_| rng.normal_duration(mean, sigma).as_secs_f64()).sum();
        let sample_mean = total / n as f64;
        assert!((sample_mean - 0.010).abs() < 0.0005, "sample mean {sample_mean}");
        // Heavy clamp case: mean 0 with large sigma still never negative.
        for _ in 0..100 {
            let d = rng.normal_duration(SimDuration::ZERO, SimDuration::from_secs(1));
            assert!(d.as_micros() < u64::MAX / 2);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniform_duration_bounds() {
        let mut rng = SimRng::new(8);
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        for _ in 0..1000 {
            let d = rng.uniform_duration(lo, hi);
            assert!(d >= lo && d < hi);
        }
        assert_eq!(rng.uniform_duration(hi, lo), hi);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(9);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let a: Vec<u64> = (0..10).map(|_| f1.range_u64(0, 1000)).collect();
        let b: Vec<u64> = (0..10).map(|_| f2.range_u64(0, 1000)).collect();
        assert_ne!(a, b);
    }
}
