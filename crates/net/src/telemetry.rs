//! Operational telemetry: Prometheus-style exposition, health probes and the
//! flight recorder.
//!
//! PRs 1–3 gave every node raw counters ([`crate::metrics`]) and causal
//! latency histograms ([`crate::obs`]); this module turns them into signals
//! another *node in the simulation* can consume. Gateways and MAS servers
//! answer `GET /metrics` with the text exposition produced by
//! [`render_prom`], and `GET /healthz` with a liveness document — served over
//! the same modeled links as protocol traffic, so a monitor sees exactly the
//! staleness and loss a real scraper would. [`parse_prom`] is the inverse,
//! used by the in-sim monitor ([`crate::slo`]) and by round-trip tests.
//!
//! The [`FlightRecorder`] is the post-mortem half: a bounded ring of recent
//! span/alert lines for one node, dumped to
//! `target/flightrec/<scenario>-<node>.jsonl` when an alert fires or a soak
//! invariant fails, so a red CI run ships its own diagnosis.
//!
//! Scrapes are *delta-encoded* end to end (see [`DeltaState`]): series
//! identities are interned once into [`SeriesId`]s, every observation stamps
//! the series that actually changed with a dirty epoch, and a scraper that
//! sends `GET /metrics?since=<epoch>` gets back only the changed series
//! under a `# EPOCH` header. Monitoring traffic then scales with *churn*,
//! not with series count — the property that lets the federation plane hold
//! hundreds of cells on one WAN ingress.
//!
//! Everything here is deterministic: snapshots sort by name, exposition
//! output is byte-stable across runs and shard counts, and nothing consults
//! the wall clock.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::http::{reply, HttpRequest, HttpStatus};
use crate::metrics::{Metrics, KEY_QUEUE_DEPTH};
use crate::obs::{Collector, Exemplar, Histogram};
use crate::sim::{Ctx, NodeId};
use crate::time::SimTime;

/// Scrape endpoint path served by gateway and MAS nodes.
pub const PATH_METRICS: &str = "/metrics";
/// Liveness endpoint path served by gateway and MAS nodes.
pub const PATH_HEALTHZ: &str = "/healthz";
/// Trace query endpoint path (`/traces?stage=&min_us=&limit=&trace=`),
/// served wherever `/metrics` is.
pub const PATH_TRACES: &str = "/traces";

/// Shared histogram family for per-stage latencies (one family, a `stage`
/// label per series — the idiomatic Prometheus shape for homogeneous units).
pub const STAGE_FAMILY: &str = "pdagent_stage_duration_us";

/// A deterministic point-in-time copy of one node's telemetry: named
/// counters (including the built-in byte/message counters), gauges, and the
/// per-stage latency histograms. Everything is sorted by name, so two
/// captures of identical state render identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// `(key, value)` counters, sorted by key.
    pub counters: Vec<(String, f64)>,
    /// `(key, value)` gauges, sorted by key.
    pub gauges: Vec<(String, f64)>,
    /// `(stage, histogram)`, sorted by stage name.
    pub stages: Vec<(String, Histogram)>,
    /// Per-stage bucket exemplars from the tail sampler, `(stage, rows)`
    /// sorted by stage name, each row's `(bucket, exemplar)` sorted by
    /// bucket. Empty unless the producing node runs with sampling on — an
    /// empty section renders nothing, keeping sampling-off expositions
    /// byte-identical to the pre-exemplar format.
    pub exemplars: Vec<(String, Vec<(u8, Exemplar)>)>,
}

impl TelemetrySnapshot {
    /// Capture from a node's [`Metrics`] plus stage histograms (typically
    /// the simulation collector's; pass `&[]` when observability is off —
    /// the exposition simply omits the histogram families).
    pub fn capture(metrics: &Metrics, stages: &[(String, Histogram)]) -> TelemetrySnapshot {
        let mut counters: Vec<(String, f64)> = vec![
            ("bytes_received".to_owned(), metrics.bytes_received as f64),
            ("bytes_sent".to_owned(), metrics.bytes_sent as f64),
            ("msgs_dropped".to_owned(), metrics.msgs_dropped as f64),
            ("msgs_received".to_owned(), metrics.msgs_received as f64),
            ("msgs_sent".to_owned(), metrics.msgs_sent as f64),
        ];
        counters.extend(metrics.counters_sorted().into_iter().map(|(k, v)| (k.to_owned(), v)));
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let gauges: Vec<(String, f64)> =
            metrics.gauges_sorted().into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
        let mut stages: Vec<(String, Histogram)> = stages.to_vec();
        stages.sort_by(|a, b| a.0.cmp(&b.0));
        TelemetrySnapshot { counters, gauges, stages, exemplars: Vec::new() }
    }

    /// Read a counter by its original key (0 if absent).
    pub fn counter(&self, key: &str) -> f64 {
        match self.counters.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.counters[i].1,
            Err(_) => 0.0,
        }
    }

    /// Read a gauge by its original key (0 if absent).
    pub fn gauge(&self, key: &str) -> f64 {
        match self.gauges.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.gauges[i].1,
            Err(_) => 0.0,
        }
    }

    /// The latency histogram for one stage, if present.
    pub fn stage(&self, name: &str) -> Option<&Histogram> {
        match self.stages.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => Some(&self.stages[i].1),
            Err(_) => None,
        }
    }

    /// One stage's exemplar rows (`(bucket, exemplar)` sorted by bucket), if
    /// the snapshot carries any.
    pub fn exemplar_rows(&self, stage: &str) -> Option<&[(u8, Exemplar)]> {
        match self.exemplars.binary_search_by(|(n, _)| n.as_str().cmp(stage)) {
            Ok(i) => Some(&self.exemplars[i].1),
            Err(_) => None,
        }
    }

    /// The highest-bucket exemplar trace id for `stage` (0 when the
    /// snapshot has none) — the concrete trace sitting furthest out in the
    /// stage's latency tail, which is what an alert edge wants to point at.
    pub fn exemplar_for(&self, stage: &str) -> u64 {
        self.exemplar_rows(stage)
            .and_then(|rows| rows.last())
            .map(|(_, e)| e.trace)
            .unwrap_or(0)
    }

    /// Apply a delta body (the changed series of a `# EPOCH .. base=..`
    /// exposition, parsed by [`parse_prom`]): every series in `delta`
    /// *replaces* its slot here, new series are inserted in key order.
    /// O(changed · log total) — the inverse of [`merge_snapshot`]'s additive
    /// fold, which stays untouched so rollups remain byte-identical to
    /// full-snapshot mode.
    ///
    /// [`merge_snapshot`]: crate::federation::merge_snapshot
    pub fn apply_delta(&mut self, delta: &TelemetrySnapshot) {
        fn upsert(dst: &mut Vec<(String, f64)>, src: &[(String, f64)]) {
            for (k, v) in src {
                match dst.binary_search_by(|(dk, _)| dk.as_str().cmp(k)) {
                    Ok(i) => dst[i].1 = *v,
                    Err(i) => dst.insert(i, (k.clone(), *v)),
                }
            }
        }
        upsert(&mut self.counters, &delta.counters);
        upsert(&mut self.gauges, &delta.gauges);
        for (name, h) in &delta.stages {
            match self.stages.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.stages[i].1.clone_from(h),
                Err(i) => self.stages.insert(i, (name.clone(), h.clone())),
            }
        }
        // Delta bodies carry a dirty stage's *full* exemplar row set, so the
        // slot is replaced, not merged.
        for (name, rows) in &delta.exemplars {
            match self.exemplars.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.exemplars[i].1.clone_from(rows),
                Err(i) => self.exemplars.insert(i, (name.clone(), rows.clone())),
            }
        }
    }
}

/// Map a free-form telemetry key to an exposition metric-name fragment:
/// anything outside `[a-zA-Z0-9_]` becomes `_` (`gateway.replays` →
/// `gateway_replays`). The original spelling still rides in the `key` label,
/// so parsing is lossless.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

/// Exposition-format label-value escaping: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
pub(crate) fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// Render a float the way the exposition format expects: integers without a
/// trailing `.0` (counters are conceptually integral), everything else via
/// the shortest round-trip `Display`.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// [`fmt_value`] straight into a reused buffer — the pooled render paths use
/// this so a scrape never allocates a per-sample `String`.
pub(crate) fn write_value(out: &mut String, v: f64) {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Append an OpenMetrics-style exemplar suffix to a `_bucket` sample line:
/// ` # {trace_id="…"} <value_us> <ts_us>`. The trace id is zero-padded to 12
/// digits so an exemplar costs the same bytes on the wire whatever its
/// value — scrape bodies must stay byte-stable across shard counts (same
/// rationale as the padded queue-depth gauge).
fn write_exemplar(out: &mut String, e: &Exemplar) {
    let _ = write!(out, " # {{trace_id=\"{:012}\"}} {} {}", e.trace, e.value_us, e.ts_us);
}

/// Split an exposition sample's value field from an optional exemplar
/// suffix. Returns `(value_text, exemplar)`.
fn split_exemplar(rest: &str) -> (&str, Option<Exemplar>) {
    let Some((value, suffix)) = rest.split_once(" # ") else { return (rest, None) };
    let parse = || -> Option<Exemplar> {
        let body = suffix.trim().strip_prefix('{')?;
        let (labels, tail) = body.split_once('}')?;
        let trace = labels.strip_prefix("trace_id=\"")?.strip_suffix('"')?.parse().ok()?;
        let mut parts = tail.split_whitespace();
        let value_us = parts.next()?.parse().ok()?;
        let ts_us = parts.next()?.parse().ok()?;
        Some(Exemplar { trace, value_us, ts_us })
    };
    (value, parse())
}

/// Render a snapshot as Prometheus text exposition.
///
/// Families are `pdagent_<sanitized-key>_total` (counters) and
/// `pdagent_<sanitized-key>` (gauges), each sample labeled with the serving
/// `instance` and its original `key` spelling; stage histograms share the
/// [`STAGE_FAMILY`] family (`_bucket`/`_sum`/`_count` plus a `_max` gauge so
/// the exact observed maximum survives the round trip). Output is sorted and
/// byte-stable: identical state renders identically on every run and under
/// every shard count.
pub fn render_prom(instance: &str, snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let inst = escape_label(instance);

    // Counters and gauges: group samples by sanitized family name (distinct
    // keys can collide post-sanitization; they become one family with two
    // `key`-labeled series).
    let render_scalars = |out: &mut String, items: &[(String, f64)], kind: &str, total: bool| {
        let mut rows: Vec<(String, &str, f64)> = items
            .iter()
            .map(|(k, v)| {
                let mut fam = format!("pdagent_{}", sanitize(k));
                if total {
                    fam.push_str("_total");
                }
                (fam, k.as_str(), *v)
            })
            .collect();
        rows.sort_by(|a, b| (a.0.as_str(), a.1).cmp(&(b.0.as_str(), b.1)));
        let mut last_fam = "";
        for (fam, key, v) in &rows {
            if fam != last_fam {
                let _ = writeln!(out, "# TYPE {fam} {kind}");
                last_fam = fam;
            }
            let _ = writeln!(
                out,
                "{fam}{{instance=\"{inst}\",key=\"{}\"}} {}",
                escape_label(key),
                fmt_value(*v)
            );
        }
    };
    render_scalars(&mut out, &snap.counters, "counter", true);
    render_scalars(&mut out, &snap.gauges, "gauge", false);

    if snap.stages.is_empty() {
        return out;
    }
    let _ = writeln!(out, "# TYPE {STAGE_FAMILY} histogram");
    for (stage, h) in &snap.stages {
        let labels = format!("instance=\"{inst}\",stage=\"{}\"", escape_label(stage));
        let rows = snap.exemplar_rows(stage).unwrap_or(&[]);
        let counts = h.bucket_counts();
        let hi = counts.iter().rposition(|&n| n > 0).unwrap_or(0);
        let mut cum = 0u64;
        for (i, &n) in counts.iter().enumerate().take(hi + 1) {
            cum += n;
            let _ = write!(
                out,
                "{STAGE_FAMILY}_bucket{{{labels},le=\"{}\"}} {cum}",
                Histogram::bucket_upper(i)
            );
            if let Ok(r) = rows.binary_search_by(|(b, _)| b.cmp(&(i as u8))) {
                write_exemplar(&mut out, &rows[r].1);
            }
            out.push('\n');
        }
        let _ = writeln!(out, "{STAGE_FAMILY}_bucket{{{labels},le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{STAGE_FAMILY}_sum{{{labels}}} {}", h.sum());
        let _ = writeln!(out, "{STAGE_FAMILY}_count{{{labels}}} {}", h.count());
    }
    let _ = writeln!(out, "# TYPE {STAGE_FAMILY}_max gauge");
    for (stage, h) in &snap.stages {
        let _ = writeln!(
            out,
            "{STAGE_FAMILY}_max{{instance=\"{inst}\",stage=\"{}\"}} {}",
            escape_label(stage),
            h.max()
        );
    }
    out
}

/// A parsed sample's `(label, value)` pairs, in line order.
type Labels = Vec<(String, String)>;

/// One parsed exposition sample: name, labels, value, optional exemplar.
fn parse_sample_full(line: &str) -> Option<(&str, Labels, f64, Option<Exemplar>)> {
    let brace = line.find('{')?;
    let name = &line[..brace];
    let rest = &line[brace + 1..];
    let finish = |labels: Labels, tail: &str| {
        let (value_text, exemplar) = split_exemplar(tail);
        let value: f64 = value_text.trim().parse().ok()?;
        Some((name, labels, value, exemplar))
    };
    let mut labels = Vec::new();
    let mut chars = rest.char_indices();
    let mut key_start = 0;
    loop {
        // Label key up to '='.
        let eq = loop {
            match chars.next() {
                Some((i, '=')) => break i,
                Some((i, '}')) => {
                    // Empty label set or trailing comma; value follows.
                    return finish(labels, &rest[i + 1..]);
                }
                Some(_) => continue,
                None => return None,
            }
        };
        let key = rest[key_start..eq].trim_start_matches(',').to_owned();
        // Opening quote.
        match chars.next() {
            Some((_, '"')) => {}
            _ => return None,
        }
        // Value until the unescaped closing quote.
        let mut raw = String::new();
        loop {
            match chars.next() {
                Some((_, '\\')) => {
                    raw.push('\\');
                    if let Some((_, c)) = chars.next() {
                        raw.push(c);
                    }
                }
                Some((_, '"')) => break,
                Some((_, c)) => raw.push(c),
                None => return None,
            }
        }
        labels.push((key, unescape_label(&raw)));
        // After a label value: ',' continues, '}' ends.
        match chars.next() {
            Some((i, ',')) => key_start = i + 1,
            Some((i, '}')) => {
                return finish(labels, &rest[i + 1..]);
            }
            _ => return None,
        }
    }
}

/// [`parse_sample_full`] without the exemplar.
#[cfg(test)]
fn parse_sample(line: &str) -> Option<(&str, Labels, f64)> {
    parse_sample_full(line).map(|(n, l, v, _)| (n, l, v))
}

fn label<'a>(labels: &'a [(String, String)], key: &str) -> Option<&'a str> {
    labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

/// Parse text exposition produced by [`render_prom`] back into a
/// [`TelemetrySnapshot`]. Counter/gauge keys come from the `key` label (so
/// sanitization is lossless); stage histograms are rebuilt from the
/// cumulative `_bucket` series plus `_sum` and `_max`. Unknown lines are
/// ignored, making the parser tolerant of future families.
pub fn parse_prom(text: &str) -> TelemetrySnapshot {
    let mut snap = TelemetrySnapshot::default();
    let bucket_name = format!("{STAGE_FAMILY}_bucket");
    let sum_name = format!("{STAGE_FAMILY}_sum");
    let count_name = format!("{STAGE_FAMILY}_count");
    let max_name = format!("{STAGE_FAMILY}_max");
    // stage → (upper bound → cumulative count), plus sum/max per stage.
    let mut cums: BTreeMap<String, BTreeMap<u64, u64>> = BTreeMap::new();
    let mut sums: BTreeMap<String, u64> = BTreeMap::new();
    let mut maxes: BTreeMap<String, u64> = BTreeMap::new();
    // stage → (bucket → exemplar) from `_bucket` suffixes.
    let mut exes: BTreeMap<String, BTreeMap<u8, Exemplar>> = BTreeMap::new();
    // family → declared kind from `# TYPE` lines. Classifying by declared
    // type (not the `_total` suffix) keeps a *gauge* whose key sanitizes to
    // `..._total` (e.g. `queue.total`) a gauge through the round trip.
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            if let Some(decl) = line.strip_prefix("# TYPE ") {
                let mut parts = decl.split_whitespace();
                if let (Some(fam), Some(kind)) = (parts.next(), parts.next()) {
                    types.insert(fam.to_owned(), kind.to_owned());
                }
            }
            continue;
        }
        let Some((name, labels, value, exemplar)) = parse_sample_full(line) else { continue };
        if name == bucket_name {
            let (Some(stage), Some(le)) = (label(&labels, "stage"), label(&labels, "le")) else {
                continue;
            };
            if le == "+Inf" {
                continue; // same as the _count series
            }
            if let Ok(upper) = le.parse::<u64>() {
                cums.entry(stage.to_owned()).or_default().insert(upper, value as u64);
                if let Some(e) = exemplar {
                    let idx = if upper == 0 { 0 } else { (upper + 1).trailing_zeros() as u8 };
                    exes.entry(stage.to_owned()).or_default().insert(idx, e);
                }
            }
        } else if name == sum_name {
            if let Some(stage) = label(&labels, "stage") {
                sums.insert(stage.to_owned(), value as u64);
            }
        } else if name == max_name {
            if let Some(stage) = label(&labels, "stage") {
                maxes.insert(stage.to_owned(), value as u64);
            }
        } else if name == count_name {
            // Redundant with the bucket series; nothing to record.
        } else if let Some(key) = label(&labels, "key") {
            // Prefer the declared `# TYPE`; fall back to the suffix
            // heuristic for expositions from other producers.
            let is_counter = match types.get(name).map(String::as_str) {
                Some("counter") => true,
                Some(_) => false,
                None => name.ends_with("_total"),
            };
            if is_counter {
                snap.counters.push((key.to_owned(), value));
            } else {
                snap.gauges.push((key.to_owned(), value));
            }
        }
    }
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    for (stage, by_upper) in cums {
        let mut buckets = [0u64; crate::obs::HISTOGRAM_BUCKETS];
        let mut prev = 0u64;
        for (upper, cum) in by_upper {
            let idx = if upper == 0 { 0 } else { (upper + 1).trailing_zeros() as usize };
            if idx < buckets.len() {
                buckets[idx] = cum.saturating_sub(prev);
            }
            prev = cum;
        }
        let sum = sums.get(&stage).copied().unwrap_or(0);
        let max = maxes.get(&stage).copied().unwrap_or(0);
        snap.stages.push((stage, Histogram::from_parts(&buckets, sum, max)));
    }
    for (stage, by_bucket) in exes {
        snap.exemplars.push((stage, by_bucket.into_iter().collect()));
    }
    snap
}

/// Render the `/healthz` document: a one-line JSON liveness statement. The
/// probe's value is *reaching* the node over the modeled link — the body
/// stays minimal and deterministic.
pub fn render_health(instance: &str, now: SimTime) -> String {
    format!("{{\"status\":\"ok\",\"instance\":\"{}\",\"now_us\":{}}}", escape_label(instance), now.0)
}

/// Which section a series lives in — part of its interned identity, since a
/// counter and a gauge may share a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeriesKind {
    /// A monotonically increasing counter (`pdagent_<key>_total`).
    Counter,
    /// An instantaneous gauge (`pdagent_<key>`).
    Gauge,
    /// A stage latency histogram (all share [`STAGE_FAMILY`]).
    Stage,
}

/// A stable, interned series identity: `(kind, key)` hashed once, rendered
/// fragments cached forever. Ids never change across observations, so dirty
/// epochs can be tracked per id without re-deriving family names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeriesId(u32);

/// The intern table: `(kind, key)` → [`SeriesId`], plus the pre-rendered
/// exposition fragments every render would otherwise recompute — the family
/// name (`pdagent_<sanitized>[_total]`; stage series keep [`STAGE_FAMILY`])
/// and the escaped `key`/`stage` label value.
#[derive(Debug, Default)]
pub struct SeriesInterner {
    ids: HashMap<(SeriesKind, String), SeriesId>,
    families: Vec<String>,
    escaped: Vec<String>,
}

impl SeriesInterner {
    fn intern(&mut self, kind: SeriesKind, key: &str) -> SeriesId {
        if let Some(&id) = self.ids.get(&(kind, key.to_owned())) {
            return id;
        }
        let id = SeriesId(self.families.len() as u32);
        let family = match kind {
            SeriesKind::Counter => format!("pdagent_{}_total", sanitize(key)),
            SeriesKind::Gauge => format!("pdagent_{}", sanitize(key)),
            SeriesKind::Stage => STAGE_FAMILY.to_owned(),
        };
        self.families.push(family);
        self.escaped.push(escape_label(key));
        self.ids.insert((kind, key.to_owned()), id);
        id
    }

    fn family(&self, id: SeriesId) -> &str {
        &self.families[id.0 as usize]
    }

    fn escaped(&self, id: SeriesId) -> &str {
        &self.escaped[id.0 as usize]
    }
}

/// Outcome of diffing one section against its previous observation.
struct SectionDiff {
    /// Any series value changed (including inserted/removed series).
    changed: bool,
    /// The key *set* changed — render orders must be recomputed.
    reshaped: bool,
    /// A series vanished. Deltas cannot express removal, so this resets the
    /// servable-epoch floor and forces scrapers back to a full snapshot.
    removed: bool,
}

/// The versioned server-side snapshot behind delta scraping.
///
/// `observe*` diffs the node's current telemetry against the last
/// observation, stamping every changed series with a fresh epoch (the epoch
/// only advances when something actually changed, so an idle node's scrape
/// is a header and nothing else). [`DeltaState::render_into`] then emits
/// either the full exposition or only the series changed since a scraper's
/// last-seen epoch, under a first-line header:
///
/// ```text
/// # EPOCH 42 full          (full snapshot; scraper replaces its copy)
/// # EPOCH 42 base=37       (delta; scraper applies over its epoch-37 copy)
/// ```
///
/// The full rendering is byte-identical to [`render_prom`] (pinned by test),
/// so delta-aware and legacy scrapers can coexist against one server.
#[derive(Debug, Default)]
pub struct DeltaState {
    epoch: u64,
    /// Floor of servable base epochs: bumped past everything when a series
    /// is removed (a delta cannot say "delete"), forcing full resync.
    reset_epoch: u64,
    /// The last observed state — also the render source.
    prev: TelemetrySnapshot,
    interner: SeriesInterner,
    counter_ids: Vec<SeriesId>,
    gauge_ids: Vec<SeriesId>,
    stage_ids: Vec<SeriesId>,
    /// Per-series last-changed epoch, aligned with `prev`'s sections.
    counter_epochs: Vec<u64>,
    gauge_epochs: Vec<u64>,
    stage_epochs: Vec<u64>,
    /// Render permutations: section indices sorted by `(family, key)` — the
    /// exposition order [`render_prom`] sorts per call, precomputed here and
    /// rebuilt only when the key set changes.
    counter_order: Vec<u32>,
    gauge_order: Vec<u32>,
}

impl DeltaState {
    /// Fresh state: epoch 0, nothing observed.
    pub fn new() -> DeltaState {
        DeltaState::default()
    }

    /// The current snapshot epoch (0 until the first observation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Can a delta be served against base epoch `since`? True while `since`
    /// is not in the future and no series has been removed after it.
    pub fn can_delta(&self, since: u64) -> bool {
        since <= self.epoch && since >= self.reset_epoch
    }

    /// Diff one scalar section in place. Fast path: identical key set →
    /// value-only compare, zero allocation. Slow path (keys appeared or
    /// vanished): realign by merge walk, reusing every surviving key's
    /// `String` and [`SeriesId`].
    fn diff_scalars(
        prev: &mut Vec<(String, f64)>,
        ids: &mut Vec<SeriesId>,
        epochs: &mut Vec<u64>,
        next: &[(&str, f64)],
        new_epoch: u64,
        interner: &mut SeriesInterner,
        kind: SeriesKind,
    ) -> SectionDiff {
        if prev.len() == next.len() && prev.iter().zip(next).all(|((pk, _), (nk, _))| pk == nk) {
            let mut changed = false;
            for (i, ((_, pv), &(_, nv))) in prev.iter_mut().zip(next).enumerate() {
                if *pv != nv {
                    *pv = nv;
                    epochs[i] = new_epoch;
                    changed = true;
                }
            }
            return SectionDiff { changed, reshaped: false, removed: false };
        }
        let mut out = Vec::with_capacity(next.len());
        let mut out_ids = Vec::with_capacity(next.len());
        let mut out_epochs = Vec::with_capacity(next.len());
        let mut removed = false;
        let mut i = 0;
        for &(nk, nv) in next {
            while i < prev.len() && prev[i].0.as_str() < nk {
                removed = true;
                i += 1;
            }
            if i < prev.len() && prev[i].0 == nk {
                let unchanged = prev[i].1 == nv;
                out.push((std::mem::take(&mut prev[i].0), nv));
                out_ids.push(ids[i]);
                out_epochs.push(if unchanged { epochs[i] } else { new_epoch });
                i += 1;
            } else {
                out.push((nk.to_owned(), nv));
                out_ids.push(interner.intern(kind, nk));
                out_epochs.push(new_epoch);
            }
        }
        removed |= i < prev.len();
        *prev = out;
        *ids = out_ids;
        *epochs = out_epochs;
        SectionDiff { changed: true, reshaped: true, removed }
    }

    /// [`DeltaState::diff_scalars`] for the stage-histogram section.
    fn diff_stages(
        prev: &mut Vec<(String, Histogram)>,
        ids: &mut Vec<SeriesId>,
        epochs: &mut Vec<u64>,
        next: &[(&str, &Histogram)],
        new_epoch: u64,
        interner: &mut SeriesInterner,
    ) -> SectionDiff {
        if prev.len() == next.len() && prev.iter().zip(next).all(|((pk, _), (nk, _))| pk == nk) {
            let mut changed = false;
            for (i, ((_, ph), &(_, nh))) in prev.iter_mut().zip(next).enumerate() {
                if ph != nh {
                    ph.clone_from(nh);
                    epochs[i] = new_epoch;
                    changed = true;
                }
            }
            return SectionDiff { changed, reshaped: false, removed: false };
        }
        let mut out = Vec::with_capacity(next.len());
        let mut out_ids = Vec::with_capacity(next.len());
        let mut out_epochs = Vec::with_capacity(next.len());
        let mut removed = false;
        let mut i = 0;
        for &(nk, nh) in next {
            while i < prev.len() && prev[i].0.as_str() < nk {
                removed = true;
                i += 1;
            }
            if i < prev.len() && prev[i].0 == nk {
                let unchanged = prev[i].1 == *nh;
                let (key, mut hist) = std::mem::take(&mut prev[i]);
                if !unchanged {
                    hist.clone_from(nh);
                }
                out.push((key, hist));
                out_ids.push(ids[i]);
                out_epochs.push(if unchanged { epochs[i] } else { new_epoch });
                i += 1;
            } else {
                out.push((nk.to_owned(), nh.clone()));
                out_ids.push(interner.intern(SeriesKind::Stage, nk));
                out_epochs.push(new_epoch);
            }
        }
        removed |= i < prev.len();
        *prev = out;
        *ids = out_ids;
        *epochs = out_epochs;
        SectionDiff { changed: true, reshaped: true, removed }
    }

    /// Diff the exemplar section. Exemplar rows ride inside the stage
    /// histogram samples, so a stage whose exemplars changed must be marked
    /// dirty *even when its histogram did not* — a scrape can land between a
    /// span's close (histogram bump) and its trace's retention at root close
    /// (exemplar appears). Returns whether anything changed.
    fn diff_exemplars(
        prev: &mut Vec<(String, Vec<(u8, Exemplar)>)>,
        stages: &[(String, Histogram)],
        stage_epochs: &mut [u64],
        next: &[(&str, &[(u8, Exemplar)])],
        new_epoch: u64,
    ) -> bool {
        let same = prev.len() == next.len()
            && prev.iter().zip(next).all(|((pk, pv), &(nk, nv))| pk == nk && pv.as_slice() == nv);
        if same {
            return false;
        }
        let mut out = Vec::with_capacity(next.len());
        for &(nk, nv) in next {
            let old = match prev.binary_search_by(|(pk, _)| pk.as_str().cmp(nk)) {
                Ok(i) => Some(prev[i].1.as_slice()),
                Err(_) => None,
            };
            if old != Some(nv) {
                if let Ok(i) = stages.binary_search_by(|(s, _)| s.as_str().cmp(nk)) {
                    stage_epochs[i] = new_epoch;
                }
            }
            out.push((nk.to_owned(), nv.to_vec()));
        }
        *prev = out;
        true
    }

    fn sort_order<V>(
        section: &[(String, V)],
        ids: &[SeriesId],
        interner: &SeriesInterner,
    ) -> Vec<u32> {
        let mut order: Vec<u32> = (0..section.len() as u32).collect();
        order.sort_by(|&a, &b| {
            let ka = (interner.family(ids[a as usize]), section[a as usize].0.as_str());
            let kb = (interner.family(ids[b as usize]), section[b as usize].0.as_str());
            ka.cmp(&kb)
        });
        order
    }

    fn observe_views(
        &mut self,
        counters: &[(&str, f64)],
        gauges: &[(&str, f64)],
        stages: &[(&str, &Histogram)],
        exemplars: &[(&str, &[(u8, Exemplar)])],
    ) -> u64 {
        let new_epoch = self.epoch + 1;
        let dc = Self::diff_scalars(
            &mut self.prev.counters,
            &mut self.counter_ids,
            &mut self.counter_epochs,
            counters,
            new_epoch,
            &mut self.interner,
            SeriesKind::Counter,
        );
        let dg = Self::diff_scalars(
            &mut self.prev.gauges,
            &mut self.gauge_ids,
            &mut self.gauge_epochs,
            gauges,
            new_epoch,
            &mut self.interner,
            SeriesKind::Gauge,
        );
        let ds = Self::diff_stages(
            &mut self.prev.stages,
            &mut self.stage_ids,
            &mut self.stage_epochs,
            stages,
            new_epoch,
            &mut self.interner,
        );
        let dx = Self::diff_exemplars(
            &mut self.prev.exemplars,
            &self.prev.stages,
            &mut self.stage_epochs,
            exemplars,
            new_epoch,
        );
        if dc.reshaped {
            self.counter_order = Self::sort_order(&self.prev.counters, &self.counter_ids, &self.interner);
        }
        if dg.reshaped {
            self.gauge_order = Self::sort_order(&self.prev.gauges, &self.gauge_ids, &self.interner);
        }
        if dc.changed || dg.changed || ds.changed || dx {
            self.epoch = new_epoch;
        }
        if dc.removed || dg.removed || ds.removed {
            self.reset_epoch = new_epoch;
        }
        self.epoch
    }

    /// Observe a prepared snapshot (the monitor's cell view, tests). Returns
    /// the epoch after the observation.
    pub fn observe(&mut self, snap: &TelemetrySnapshot) -> u64 {
        let counters: Vec<(&str, f64)> =
            snap.counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let gauges: Vec<(&str, f64)> = snap.gauges.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let stages: Vec<(&str, &Histogram)> =
            snap.stages.iter().map(|(k, h)| (k.as_str(), h)).collect();
        let exemplars: Vec<(&str, &[(u8, Exemplar)])> =
            snap.exemplars.iter().map(|(k, v)| (k.as_str(), v.as_slice())).collect();
        self.observe_views(&counters, &gauges, &stages, &exemplars)
    }

    /// Observe a node's live telemetry without materializing a
    /// [`TelemetrySnapshot`]: the built-in transport counters are merge-
    /// walked into the dynamic counters (same order [`TelemetrySnapshot::capture`]
    /// produces) and stage histograms are borrowed straight from the
    /// collector — no `String` or `Histogram` clones on the unchanged path.
    pub fn observe_node(
        &mut self,
        metrics: &Metrics,
        stages: &[(&str, &Histogram)],
        exemplars: &[(&str, &[(u8, Exemplar)])],
    ) -> u64 {
        let builtin = [
            ("bytes_received", metrics.bytes_received as f64),
            ("bytes_sent", metrics.bytes_sent as f64),
            ("msgs_dropped", metrics.msgs_dropped as f64),
            ("msgs_received", metrics.msgs_received as f64),
            ("msgs_sent", metrics.msgs_sent as f64),
        ];
        let dynamic = metrics.counters_sorted();
        let mut counters: Vec<(&str, f64)> = Vec::with_capacity(builtin.len() + dynamic.len());
        let (mut i, mut j) = (0, 0);
        while i < builtin.len() || j < dynamic.len() {
            let take_builtin = match (builtin.get(i), dynamic.get(j)) {
                (Some(b), Some(d)) => b.0 <= d.0,
                (Some(_), None) => true,
                _ => false,
            };
            if take_builtin {
                counters.push(builtin[i]);
                i += 1;
            } else {
                counters.push(dynamic[j]);
                j += 1;
            }
        }
        let gauges = metrics.gauges_sorted();
        self.observe_views(&counters, &gauges, stages, exemplars)
    }

    /// The last observed state (what a full render would expose).
    pub fn snapshot(&self) -> &TelemetrySnapshot {
        &self.prev
    }

    /// Render into a pooled buffer (cleared first). `since: None` renders
    /// the full exposition — byte-identical to [`render_prom`] after the
    /// header line. `since: Some(e)` renders only the series whose
    /// last-changed epoch is beyond `e` (the caller must have checked
    /// [`DeltaState::can_delta`]). Either way the first line is the
    /// `# EPOCH` header the scraper resynchronizes on.
    pub fn render_into(&self, instance: &str, since: Option<u64>, out: &mut String) {
        out.clear();
        match since {
            Some(s) => {
                let _ = writeln!(out, "# EPOCH {} base={s}", self.epoch);
            }
            None => {
                let _ = writeln!(out, "# EPOCH {} full", self.epoch);
            }
        }
        let since = since.unwrap_or(0);
        let inst = escape_label(instance);
        let scalars = |out: &mut String,
                       section: &[(String, f64)],
                       ids: &[SeriesId],
                       epochs: &[u64],
                       order: &[u32],
                       kind: &str| {
            let mut last_fam = "";
            for &oi in order {
                let i = oi as usize;
                if epochs[i] <= since {
                    continue;
                }
                let fam = self.interner.family(ids[i]);
                if fam != last_fam {
                    let _ = writeln!(out, "# TYPE {fam} {kind}");
                    last_fam = fam;
                }
                let _ = write!(
                    out,
                    "{fam}{{instance=\"{inst}\",key=\"{}\"}} ",
                    self.interner.escaped(ids[i])
                );
                write_value(out, section[i].1);
                out.push('\n');
            }
        };
        scalars(out, &self.prev.counters, &self.counter_ids, &self.counter_epochs, &self.counter_order, "counter");
        scalars(out, &self.prev.gauges, &self.gauge_ids, &self.gauge_epochs, &self.gauge_order, "gauge");

        if !self.stage_epochs.iter().any(|&e| e > since) {
            return;
        }
        let _ = writeln!(out, "# TYPE {STAGE_FAMILY} histogram");
        for (i, (name, h)) in self.prev.stages.iter().enumerate() {
            if self.stage_epochs[i] <= since {
                continue;
            }
            let stage = self.interner.escaped(self.stage_ids[i]);
            let rows: &[(u8, Exemplar)] = match self
                .prev
                .exemplars
                .binary_search_by(|(n, _)| n.as_str().cmp(name))
            {
                Ok(x) => &self.prev.exemplars[x].1,
                Err(_) => &[],
            };
            let counts = h.bucket_counts();
            let hi = counts.iter().rposition(|&n| n > 0).unwrap_or(0);
            let mut cum = 0u64;
            for (b, &n) in counts.iter().enumerate().take(hi + 1) {
                cum += n;
                let _ = write!(
                    out,
                    "{STAGE_FAMILY}_bucket{{instance=\"{inst}\",stage=\"{stage}\",le=\"{}\"}} {cum}",
                    Histogram::bucket_upper(b)
                );
                if let Ok(r) = rows.binary_search_by(|(eb, _)| eb.cmp(&(b as u8))) {
                    write_exemplar(out, &rows[r].1);
                }
                out.push('\n');
            }
            let _ = writeln!(
                out,
                "{STAGE_FAMILY}_bucket{{instance=\"{inst}\",stage=\"{stage}\",le=\"+Inf\"}} {}",
                h.count()
            );
            let _ = writeln!(out, "{STAGE_FAMILY}_sum{{instance=\"{inst}\",stage=\"{stage}\"}} {}", h.sum());
            let _ = writeln!(out, "{STAGE_FAMILY}_count{{instance=\"{inst}\",stage=\"{stage}\"}} {}", h.count());
        }
        let _ = writeln!(out, "# TYPE {STAGE_FAMILY}_max gauge");
        for (i, (_, h)) in self.prev.stages.iter().enumerate() {
            if self.stage_epochs[i] <= since {
                continue;
            }
            let _ = writeln!(
                out,
                "{STAGE_FAMILY}_max{{instance=\"{inst}\",stage=\"{}\"}} {}",
                self.interner.escaped(self.stage_ids[i]),
                h.max()
            );
        }
    }
}

/// The parsed `# EPOCH` first line of a delta-aware exposition body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochHeader {
    /// The snapshot epoch this body brings the scraper up to.
    pub epoch: u64,
    /// `None` for a full snapshot (replace); `Some(base)` for a delta to
    /// apply over the scraper's copy of epoch `base`.
    pub base: Option<u64>,
}

/// Parse the `# EPOCH <epoch> full|base=<n>` header off an exposition body.
/// Returns `None` for legacy bodies without one (treat as a full snapshot).
pub fn parse_epoch_header(text: &str) -> Option<EpochHeader> {
    let rest = text.lines().next()?.strip_prefix("# EPOCH ")?;
    let mut parts = rest.split_whitespace();
    let epoch = parts.next()?.parse().ok()?;
    match parts.next() {
        Some("full") | None => Some(EpochHeader { epoch, base: None }),
        Some(b) => Some(EpochHeader { epoch, base: Some(b.strip_prefix("base=")?.parse().ok()?) }),
    }
}

/// Split a request path into `(path, since)`: the conditional-scrape query
/// `GET /metrics?since=<epoch>` carries the scraper's last-seen epoch.
/// Unknown query parameters are ignored.
pub fn parse_since(path: &str) -> (&str, Option<u64>) {
    match path.split_once('?') {
        Some((base, query)) => {
            let since =
                query.split('&').find_map(|kv| kv.strip_prefix("since=")).and_then(|v| v.parse().ok());
            (base, since)
        }
        None => (path, None),
    }
}

/// The stateful, pooled scrape server every telemetry-exposing node embeds:
/// a [`DeltaState`] over the node's live metrics plus one reusable render
/// buffer, so steady-state scrapes allocate no per-scrape `String`s and a
/// conditional scrape (`?since=<epoch>`) costs only the changed series.
///
/// A single-slot render cache short-circuits duplicate scrapes (same epoch,
/// same base, same queue depth — e.g. a retransmitted request whose first
/// copy already answered): the buffer is served as-is and
/// `telemetry.render_cache_hits` counts the skip.
#[derive(Debug, Default)]
pub struct TelemetryServer {
    delta: DeltaState,
    /// Pooled render buffer, reused across scrapes.
    body: String,
    /// `(epoch, since, queue_depth)` the buffer currently holds.
    cached: Option<(u64, Option<u64>, usize)>,
}

impl TelemetryServer {
    /// Fresh server; nothing is observed or rendered until a scrape lands.
    pub fn new() -> TelemetryServer {
        TelemetryServer::default()
    }

    /// The delta state (epoch inspection in tests).
    pub fn delta(&self) -> &DeltaState {
        &self.delta
    }

    /// Handle `GET /metrics[?since=..]` and `GET /healthz`; returns `false`
    /// to leave any other request for the caller's protocol dispatch. Same
    /// contract as [`serve_telemetry`], plus delta encoding: when the
    /// scraper's `since` epoch is still servable the reply carries only the
    /// series changed past it, under the `# EPOCH` header; otherwise (gap,
    /// removal, legacy scraper) a full snapshot goes out.
    pub fn serve(&mut self, ctx: &mut Ctx<'_>, from: NodeId, req: &HttpRequest, instance: &str) -> bool {
        if req.method != "GET" {
            return false;
        }
        let (path, since) = parse_since(&req.path);
        match path {
            PATH_METRICS => {
                let queue_depth = ctx.queue_depth();
                set_sampler_gauges(ctx);
                let (metrics, obs) = ctx.metrics_and_obs();
                let stages = obs.map(|c| c.stages()).unwrap_or_default();
                let exemplars = obs.map(|c| c.exemplars()).unwrap_or_default();
                let epoch = self.delta.observe_node(metrics, &stages, &exemplars);
                let since = since.filter(|&s| self.delta.can_delta(s));
                let key = (epoch, since, queue_depth);
                if self.cached == Some(key) {
                    ctx.metrics().bump("telemetry.render_cache_hits", 1.0);
                } else {
                    self.delta.render_into(instance, since, &mut self.body);
                    // Engine-level gauge: the hosting simulator's event-queue
                    // depth, read off the scheduler's O(1) occupancy counter.
                    // Zero-padded to a fixed width because the value is
                    // partition-*dependent* (each shard has its own queue)
                    // while scrape bodies must cost the same bytes on the
                    // wire under every shard count — otherwise transfer
                    // times, and with them the monitor-plane SLO digests,
                    // would diverge between partitionings. Emitted in every
                    // body, full or delta, like any other live gauge.
                    let _ = writeln!(self.body, "# TYPE pdagent_sim_queue_depth gauge");
                    let _ = writeln!(
                        self.body,
                        "pdagent_sim_queue_depth{{instance=\"{}\",key=\"{KEY_QUEUE_DEPTH}\"}} {queue_depth:012}",
                        escape_label(instance)
                    );
                    self.cached = Some(key);
                }
                ctx.metrics().bump("telemetry.scrapes", 1.0);
                reply(ctx, from, req, HttpStatus::Ok, Bytes::copy_from_slice(self.body.as_bytes()));
                true
            }
            PATH_HEALTHZ => {
                let body = render_health(instance, ctx.now());
                ctx.metrics().bump("telemetry.probes", 1.0);
                reply(ctx, from, req, HttpStatus::Ok, body.into_bytes());
                true
            }
            PATH_TRACES => {
                serve_traces(ctx, from, req);
                true
            }
            _ => false,
        }
    }
}

/// Refresh the serving node's `obs.*` sampler gauges from the attached
/// collector, so every scrape body carries the reservoir's live accounting.
/// No-op (and no new series — byte-identity preserved) while sampling is
/// off.
fn set_sampler_gauges(ctx: &mut Ctx<'_>) {
    let Some(stats) = ctx.obs_collector().and_then(|c| c.sampler_stats()) else { return };
    let m = ctx.metrics();
    m.set_gauge("obs.retained_traces", stats.retained_traces as f64);
    m.set_gauge("obs.dropped_spans", stats.dropped_spans as f64);
    m.set_gauge("obs.sampler_bytes", stats.sampler_bytes as f64);
}

/// Parse the `/traces` query string: `stage=<name>`, `min_us=<n>`,
/// `limit=<n>` (default 20), `trace=<id>` (render one trace's timeline
/// directly). Unknown parameters are ignored.
fn parse_traces_query(path: &str) -> (Option<String>, u64, usize, Option<u64>) {
    let mut stage = None;
    let mut min_us = 0;
    let mut limit = 20;
    let mut trace = None;
    if let Some((_, query)) = path.split_once('?') {
        for kv in query.split('&') {
            if let Some(v) = kv.strip_prefix("stage=") {
                stage = Some(v.to_owned());
            } else if let Some(v) = kv.strip_prefix("min_us=") {
                min_us = v.parse().unwrap_or(0);
            } else if let Some(v) = kv.strip_prefix("limit=") {
                limit = v.parse().unwrap_or(20);
            } else if let Some(v) = kv.strip_prefix("trace=") {
                trace = v.parse().ok();
            }
        }
    }
    (stage, min_us, limit, trace)
}

/// Render the `/traces` response body against a collector: one header line
/// per matching retained trace plus its [`Collector::render_trace`]
/// timeline. Deterministic — hits sort by duration (longest first) with the
/// trace id as tie-break.
pub fn render_traces_body(collector: &Collector, path: &str) -> String {
    let (stage, min_us, limit, trace) = parse_traces_query(path);
    let mut out = String::new();
    if let Some(t) = trace {
        let timeline = collector.render_trace(t);
        if timeline.is_empty() {
            let _ = writeln!(out, "trace {t:012} not retained");
        } else {
            let _ = writeln!(out, "trace {t:012}");
            out.push_str(&timeline);
        }
        return out;
    }
    let hits = collector.query_traces(stage.as_deref(), min_us, limit);
    let _ = writeln!(out, "traces {}", hits.len());
    for h in &hits {
        let class = h.class.map(|c| c.as_str()).unwrap_or("all");
        let _ = writeln!(
            out,
            "trace {:012} root={} dur_us={} class={class} spans={}",
            h.trace, h.root, h.duration_us, h.spans
        );
        out.push_str(&collector.render_trace(h.trace));
    }
    out
}

/// Answer a `GET /traces` request from the attached collector (404 when
/// observability is off).
fn serve_traces(ctx: &mut Ctx<'_>, from: NodeId, req: &HttpRequest) {
    let body = ctx.obs_collector().map(|c| render_traces_body(c, &req.path));
    ctx.metrics().bump("telemetry.trace_queries", 1.0);
    match body {
        Some(b) => reply(ctx, from, req, HttpStatus::Ok, b.into_bytes()),
        None => reply(ctx, from, req, HttpStatus::NotFound, Vec::<u8>::new()),
    }
}

/// Server-side handler: if `req` is a `GET` for [`PATH_METRICS`] or
/// [`PATH_HEALTHZ`], answer it (uncached — scrapes must never enter replay
/// caches) and return `true`; otherwise leave the request for the caller's
/// protocol dispatch. Zero-cost when unused: nothing is rendered until a
/// scrape actually arrives, and without a collector the exposition carries
/// no histogram families.
///
/// This is the stateless legacy path: it re-renders the full exposition per
/// scrape and never emits an `# EPOCH` header. A `?since=` query is accepted
/// but ignored (the scraper sees a legacy full body and replaces its copy).
/// Long-lived servers should hold a [`TelemetryServer`] instead.
pub fn serve_telemetry(ctx: &mut Ctx<'_>, from: NodeId, req: &HttpRequest, instance: &str) -> bool {
    if req.method != "GET" {
        return false;
    }
    match parse_since(&req.path).0 {
        PATH_METRICS => {
            set_sampler_gauges(ctx);
            let stages: Vec<(String, Histogram)> = ctx
                .obs_collector()
                .map(|c| {
                    c.stages().iter().map(|(n, h)| ((*n).to_owned(), (*h).clone())).collect()
                })
                .unwrap_or_default();
            let mut snap = TelemetrySnapshot::capture(ctx.metrics(), &stages);
            snap.exemplars = ctx
                .obs_collector()
                .map(|c| {
                    c.exemplars()
                        .into_iter()
                        .map(|(n, rows)| (n.to_owned(), rows.to_vec()))
                        .collect()
                })
                .unwrap_or_default();
            let mut body = render_prom(instance, &snap);
            // See TelemetryServer::serve for why this is zero-padded.
            let _ = writeln!(body, "# TYPE pdagent_sim_queue_depth gauge");
            let _ = writeln!(
                body,
                "pdagent_sim_queue_depth{{instance=\"{}\",key=\"{KEY_QUEUE_DEPTH}\"}} {:012}",
                escape_label(instance),
                ctx.queue_depth()
            );
            ctx.metrics().bump("telemetry.scrapes", 1.0);
            reply(ctx, from, req, HttpStatus::Ok, body.into_bytes());
            true
        }
        PATH_HEALTHZ => {
            let body = render_health(instance, ctx.now());
            ctx.metrics().bump("telemetry.probes", 1.0);
            reply(ctx, from, req, HttpStatus::Ok, body.into_bytes());
            true
        }
        PATH_TRACES => {
            serve_traces(ctx, from, req);
            true
        }
        _ => false,
    }
}

/// A bounded ring of recent JSONL lines for one node — the in-memory half
/// of the flight recorder. Pushing beyond the capacity evicts the oldest
/// line, so a dump always holds the *most recent* history.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    cap: usize,
    lines: VecDeque<String>,
}

impl FlightRecorder {
    /// Recorder keeping at most `cap` lines.
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder { cap: cap.max(1), lines: VecDeque::new() }
    }

    /// Append a line, evicting the oldest when full.
    pub fn push(&mut self, line: String) {
        if self.lines.len() == self.cap {
            self.lines.pop_front();
        }
        self.lines.push_back(line);
    }

    /// Number of retained lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The retained lines, oldest first, newline-terminated.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Build a recorder from a [`Collector`]: the spans recorded *on*
    /// `node` (by local id) plus every alert event, merged in time order,
    /// keeping the most recent `cap` lines.
    pub fn capture(collector: &Collector, node: NodeId, cap: usize) -> FlightRecorder {
        let mut timed: Vec<(u64, String)> = Vec::new();
        for s in collector.spans_snapshot().into_iter().filter(|s| s.node == node) {
            let mut line = format!(
                "{{\"record\":\"span\",\"trace\":{},\"span\":{},\"parent\":{},\"name\":\"",
                s.trace, s.id, s.parent
            );
            crate::obs::write_json_escaped(&mut line, s.name);
            line.push('"');
            if let Some(i) = s.index {
                let _ = write!(line, ",\"index\":{i}");
            }
            let _ = write!(line, ",\"node\":{},\"begin_us\":{}", s.node, s.begin.0);
            if let Some(e) = s.end {
                let _ = write!(line, ",\"end_us\":{}", e.0);
            }
            line.push('}');
            timed.push((s.begin.0, line));
        }
        for e in collector.events() {
            timed.push((e.at.0, format!("{{\"record\":\"alert\",{}", &e.to_json()[1..])));
        }
        timed.sort_by_key(|t| t.0);
        let mut rec = FlightRecorder::new(cap);
        for (_, line) in timed {
            rec.push(line);
        }
        rec
    }
}

/// Write a recorder to `<dir>/<scenario>-<node>.jsonl`, creating the
/// directory as needed. Returns the written path.
pub fn dump_flight(
    dir: &Path,
    scenario: &str,
    node: &str,
    rec: &FlightRecorder,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{scenario}-{node}.jsonl"));
    std::fs::write(&path, rec.to_jsonl())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::ObsEvent;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut m = Metrics::new();
        m.bytes_sent = 1000;
        m.msgs_sent = 10;
        m.bump("gateway.replays", 3.0);
        m.bump("http.gave_up", 1.0);
        m.set_gauge("gateway.replay_entries", 7.0);
        let mut h = Histogram::new();
        for v in [0u64, 3, 70, 900, 900, 16000] {
            h.record(v);
        }
        TelemetrySnapshot::capture(&m, &[("gateway.stage".to_owned(), h)])
    }

    #[test]
    fn exposition_renders_sorted_and_typed() {
        let text = render_prom("gw-0", &sample_snapshot());
        let lines: Vec<&str> = text.lines().collect();
        // TYPE precedes its samples; counters end in _total.
        let ty = lines.iter().position(|l| *l == "# TYPE pdagent_gateway_replays_total counter");
        let sample = lines
            .iter()
            .position(|l| l.starts_with("pdagent_gateway_replays_total{instance=\"gw-0\""));
        assert!(ty.unwrap() < sample.unwrap(), "{text}");
        assert!(text.contains("key=\"gateway.replays\"} 3"), "{text}");
        assert!(text.contains("# TYPE pdagent_gateway_replay_entries gauge"), "{text}");
        // Samples sorted by family name.
        let samples: Vec<&&str> =
            lines.iter().filter(|l| !l.starts_with('#') && l.contains("_total")).collect();
        let mut sorted = samples.clone();
        sorted.sort();
        assert_eq!(samples, sorted, "counter samples must be sorted");
    }

    #[test]
    fn exposition_histogram_buckets_are_cumulative_and_monotone() {
        let text = render_prom("gw-0", &sample_snapshot());
        let mut cums = Vec::new();
        for line in text.lines() {
            if line.starts_with("pdagent_stage_duration_us_bucket{") {
                let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                cums.push(v);
            }
        }
        assert!(cums.len() >= 2);
        assert!(cums.windows(2).all(|w| w[0] <= w[1]), "buckets not monotone: {cums:?}");
        assert_eq!(*cums.last().unwrap(), 6, "+Inf bucket must equal the count");
        assert!(text.contains("pdagent_stage_duration_us_sum{"), "{text}");
        assert!(text.contains("pdagent_stage_duration_us_max{"), "{text}");
    }

    #[test]
    fn label_escaping_round_trips() {
        let weird = "gw\"0\\path\nend";
        let esc = escape_label(weird);
        assert!(!esc.contains('\n'), "newline must be escaped: {esc}");
        assert_eq!(unescape_label(&esc), weird);
        // And through a full render/parse cycle via the instance label.
        let text = render_prom(weird, &sample_snapshot());
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, labels, _) = parse_sample(line).expect(line);
            assert_eq!(label(&labels, "instance"), Some(weird));
        }
    }

    #[test]
    fn parse_inverts_render() {
        let snap = sample_snapshot();
        let back = parse_prom(&render_prom("gw-0", &snap));
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.stages.len(), 1);
        let (name, h) = &back.stages[0];
        assert_eq!(name, "gateway.stage");
        let (_, orig) = &snap.stages[0];
        assert_eq!(h, orig, "histogram must survive the round trip exactly");
        assert_eq!(back.stage("gateway.stage").unwrap().p99(), orig.p99());
    }

    #[test]
    fn gauge_with_total_suffix_stays_a_gauge_through_round_trip() {
        // `queue.total` sanitizes to the family `pdagent_queue_total` — the
        // same shape as a counter family. The declared `# TYPE` line must
        // win over the suffix heuristic, or federation re-exposure would
        // silently migrate the series between sections.
        let mut m = Metrics::new();
        m.set_gauge("queue.total", 5.0);
        m.bump("requests.total", 9.0);
        let snap = TelemetrySnapshot::capture(&m, &[]);
        let back = parse_prom(&render_prom("gw-0", &snap));
        assert_eq!(back.gauge("queue.total"), 5.0, "gauge misfiled as counter");
        assert_eq!(back.counter("queue.total"), 0.0);
        assert_eq!(back.counter("requests.total"), 9.0);
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
    }

    #[test]
    fn federation_re_exposure_round_trips_weird_labels_byte_identically() {
        // The federation path re-renders what it parsed: keys with embedded
        // quotes and newlines must survive render → parse → render with the
        // second rendering byte-identical to the first.
        let mut m = Metrics::new();
        m.bump("weird\"key\nwith\\slash", 4.0);
        m.set_gauge("gauge\n\"quoted\"", 2.5);
        let snap = TelemetrySnapshot::capture(&m, &[]);
        let first = render_prom("cell\"0\nx", &snap);
        let back = parse_prom(&first);
        assert_eq!(back.counter("weird\"key\nwith\\slash"), 4.0);
        assert_eq!(back.gauge("gauge\n\"quoted\""), 2.5);
        let second = render_prom("cell\"0\nx", &back);
        assert_eq!(first, second, "re-exposure must be byte-identical");
    }

    #[test]
    fn render_is_stable_across_runs() {
        let a = render_prom("gw-0", &sample_snapshot());
        let b = render_prom("gw-0", &sample_snapshot());
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_reads_by_key() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("gateway.replays"), 3.0);
        assert_eq!(snap.counter("bytes_sent"), 1000.0);
        assert_eq!(snap.counter("nope"), 0.0);
        assert_eq!(snap.gauge("gateway.replay_entries"), 7.0);
        assert!(snap.stage("gateway.stage").is_some());
        assert!(snap.stage("nope").is_none());
    }

    #[test]
    fn health_document_is_deterministic() {
        let h = render_health("mas-1", SimTime(42));
        assert_eq!(h, "{\"status\":\"ok\",\"instance\":\"mas-1\",\"now_us\":42}");
    }

    #[test]
    fn flight_recorder_ring_keeps_most_recent() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..10 {
            rec.push(format!("{{\"i\":{i}}}"));
        }
        assert_eq!(rec.len(), 3);
        let dump = rec.to_jsonl();
        assert!(dump.contains("\"i\":9") && dump.contains("\"i\":7"));
        assert!(!dump.contains("\"i\":6"));
    }

    #[test]
    fn flight_capture_merges_spans_and_alerts_in_time_order() {
        let mut c = Collector::new();
        let t = c.new_trace();
        let s1 = c.begin_span(t, 0, "gateway.stage", None, 5, SimTime(100));
        c.end_span(s1, SimTime(200));
        let s2 = c.begin_span(t, 0, "mas.exec", None, 9, SimTime(150)); // other node
        c.end_span(s2, SimTime(160));
        c.record_event(ObsEvent {
            at: SimTime(150),
            node_label: 77,
            rule: "p99.scrape.rtt".to_owned(),
            instance: "gw-0".to_owned(),
            fired: true,
            value: 9.0,
            limit: 5.0,
            trace: t,
            exemplar: 0,
        });
        let rec = FlightRecorder::capture(&c, 5, 16);
        let dump = rec.to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2, "span on node 9 excluded: {dump}");
        assert!(lines[0].contains("\"record\":\"span\""));
        assert!(lines[1].contains("\"record\":\"alert\""));
        assert!(lines[1].contains("\"event\":\"AlertFired\""));
    }

    /// Render a [`DeltaState`] body, returning `(header, payload)`.
    fn render_split(ds: &DeltaState, since: Option<u64>) -> (String, String) {
        let mut out = String::new();
        ds.render_into("gw-0", since, &mut out);
        let (header, rest) = out.split_once('\n').expect("header line");
        (header.to_owned(), rest.to_owned())
    }

    #[test]
    fn delta_full_render_matches_render_prom_byte_for_byte() {
        let snap = sample_snapshot();
        let mut ds = DeltaState::new();
        let epoch = ds.observe(&snap);
        let (header, payload) = render_split(&ds, None);
        assert_eq!(header, format!("# EPOCH {epoch} full"));
        assert_eq!(payload, render_prom("gw-0", &snap), "full render must not drift");
    }

    #[test]
    fn delta_emits_only_changed_series() {
        let mut m = Metrics::new();
        m.bump("gateway.replays", 3.0);
        m.bump("http.gave_up", 1.0);
        m.set_gauge("gateway.replay_entries", 7.0);
        let mut ds = DeltaState::new();
        let e1 = ds.observe(&TelemetrySnapshot::capture(&m, &[]));
        m.bump("gateway.replays", 2.0);
        let e2 = ds.observe(&TelemetrySnapshot::capture(&m, &[]));
        assert!(e2 > e1);
        let (header, payload) = render_split(&ds, Some(e1));
        assert_eq!(header, format!("# EPOCH {e2} base={e1}"));
        assert!(payload.contains("key=\"gateway.replays\"} 5"), "{payload}");
        assert!(!payload.contains("http.gave_up"), "unchanged series leaked: {payload}");
        assert!(!payload.contains("replay_entries"), "unchanged gauge leaked: {payload}");
    }

    #[test]
    fn applying_deltas_reconstructs_the_full_snapshot() {
        let mut m = Metrics::new();
        m.bump("a.count", 1.0);
        m.set_gauge("g.depth", 4.0);
        let mut h = Histogram::new();
        h.record(10);
        let mut ds = DeltaState::new();
        let e1 = ds.observe(&TelemetrySnapshot::capture(&m, &[("s.rtt".to_owned(), h.clone())]));
        // Scraper state: parse the full body.
        let (_, full) = render_split(&ds, None);
        let mut held = parse_prom(&full);
        // Mutate: counter bump, new counter, histogram record.
        m.bump("a.count", 2.0);
        m.bump("b.new", 9.0);
        h.record(50_000);
        ds.observe(&TelemetrySnapshot::capture(&m, &[("s.rtt".to_owned(), h)]));
        let (_, delta) = render_split(&ds, Some(e1));
        held.apply_delta(&parse_prom(&delta));
        assert_eq!(
            render_prom("gw-0", &held),
            render_prom("gw-0", ds.snapshot()),
            "delta-applied snapshot must equal the live one byte-for-byte"
        );
    }

    #[test]
    fn epoch_stays_put_when_nothing_changed() {
        let snap = sample_snapshot();
        let mut ds = DeltaState::new();
        let e1 = ds.observe(&snap);
        let e2 = ds.observe(&snap);
        assert_eq!(e1, e2, "identical observation must not bump the epoch");
        let (header, payload) = render_split(&ds, Some(e1));
        assert_eq!(header, format!("# EPOCH {e1} base={e1}"));
        assert_eq!(payload, "", "no-change delta must be header-only");
    }

    #[test]
    fn series_removal_forces_a_full_resync() {
        let mut m = Metrics::new();
        m.bump("a.count", 1.0);
        m.bump("b.count", 2.0);
        let mut ds = DeltaState::new();
        let e1 = ds.observe(&TelemetrySnapshot::capture(&m, &[]));
        assert!(ds.can_delta(e1));
        // A snapshot *without* b.count: deltas cannot express deletion.
        let mut m2 = Metrics::new();
        m2.bump("a.count", 1.0);
        ds.observe(&TelemetrySnapshot::capture(&m2, &[]));
        assert!(!ds.can_delta(e1), "removal must invalidate older bases");
        assert!(ds.can_delta(ds.epoch()), "the new epoch itself stays delta-able");
    }

    #[test]
    fn epoch_header_parses_and_parse_prom_ignores_it() {
        let snap = sample_snapshot();
        let mut ds = DeltaState::new();
        let epoch = ds.observe(&snap);
        let mut body = String::new();
        ds.render_into("gw-0", None, &mut body);
        let h = parse_epoch_header(&body).expect("header");
        assert_eq!(h.epoch, epoch);
        assert_eq!(h.base, None);
        let back = parse_prom(&body);
        assert_eq!(back, parse_prom(&render_prom("gw-0", &snap)), "header must be transparent");

        let mut delta_body = String::new();
        ds.render_into("gw-0", Some(epoch), &mut delta_body);
        let hd = parse_epoch_header(&delta_body).expect("header");
        assert_eq!(hd.base, Some(epoch));
        assert_eq!(parse_epoch_header("pdagent_x_total{} 1\n"), None);
    }

    #[test]
    fn since_query_parses_from_scrape_paths() {
        assert_eq!(parse_since("/metrics"), ("/metrics", None));
        assert_eq!(parse_since("/metrics?since=42"), ("/metrics", Some(42)));
        assert_eq!(parse_since("/metrics?x=1&since=7"), ("/metrics", Some(7)));
        assert_eq!(parse_since("/metrics?since=bogus"), ("/metrics", None));
        assert_eq!(parse_since("/healthz"), ("/healthz", None));
    }

    // The delta protocol's contract, pinned adversarially: any interleaving
    // of counter bumps, gauge moves, new-series inserts, and histogram
    // records — scraped as deltas with one random full resync thrown in —
    // reconstructs a snapshot byte-identical (via render_prom) to scraping
    // full bodies every time.
    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(48))]
        #[test]
        fn delta_scrape_stream_reconstructs_full_state(
            ops in proptest::collection::vec((0u8..4, 0usize..6, 1u64..1_000), 1..24),
            resync_at in 0usize..24,
        ) {
            let mut m = Metrics::new();
            let mut h = Histogram::new();
            let mut ds = DeltaState::new();
            // Scraper-side state.
            let mut held = TelemetrySnapshot::default();
            let mut last_epoch: Option<u64> = None;
            for (step, (op, slot, val)) in ops.iter().enumerate() {
                match op {
                    0 => m.bump(&format!("c.counter_{slot}"), *val as f64),
                    1 => m.set_gauge(&format!("g.gauge_{slot}"), *val as f64),
                    2 => h.record(*val),
                    _ => m.bump("c.hot", *val as f64),
                }
                let stages = vec![("s.rtt".to_owned(), h.clone())];
                ds.observe(&TelemetrySnapshot::capture(&m, &stages));
                let since = if step == resync_at { None } else { last_epoch };
                let since = since.filter(|&s| ds.can_delta(s));
                let mut body = String::new();
                ds.render_into("gw-0", since, &mut body);
                let hd = parse_epoch_header(&body).expect("header");
                if hd.base.is_some() {
                    proptest::prop_assert_eq!(hd.base, last_epoch);
                    held.apply_delta(&parse_prom(&body));
                } else {
                    held = parse_prom(&body);
                }
                last_epoch = Some(hd.epoch);
                // Byte-identity with the live view at every step.
                let _ = step;
                proptest::prop_assert_eq!(
                    render_prom("gw-0", &held),
                    render_prom("gw-0", ds.snapshot())
                );
            }
        }
    }

    /// A snapshot carrying exemplars on two buckets of its one histogram.
    fn exemplar_snapshot() -> TelemetrySnapshot {
        let mut m = Metrics::new();
        m.bump("gateway.replays", 3.0);
        let mut h = Histogram::new();
        for v in [70u64, 900, 16_000] {
            h.record(v);
        }
        let mut snap = TelemetrySnapshot::capture(&m, &[("gateway.stage".to_owned(), h)]);
        snap.exemplars = vec![(
            "gateway.stage".to_owned(),
            vec![
                (
                    Histogram::bucket_of(900) as u8,
                    Exemplar { trace: 42, value_us: 900, ts_us: 5_000 },
                ),
                (
                    Histogram::bucket_of(16_000) as u8,
                    Exemplar { trace: 7, value_us: 16_000, ts_us: 9_000 },
                ),
            ],
        )];
        snap
    }

    #[test]
    fn exemplar_suffixes_render_and_round_trip() {
        let snap = exemplar_snapshot();
        let text = render_prom("gw-0", &snap);
        assert!(
            text.contains(" # {trace_id=\"000000000042\"} 900 5000"),
            "exemplar suffix missing: {text}"
        );
        let back = parse_prom(&text);
        assert_eq!(back.exemplars, snap.exemplars, "exemplars must survive parse");
        assert_eq!(
            render_prom("gw-0", &back),
            text,
            "federation re-exposure of exemplars must be byte-identical"
        );
        // The alert path picks the worst populated bucket's trace.
        assert_eq!(back.exemplar_for("gateway.stage"), 7);
        assert_eq!(back.exemplar_for("nope"), 0);
    }

    #[test]
    fn sampling_off_bodies_carry_no_exemplar_suffix() {
        let text = render_prom("gw-0", &sample_snapshot());
        assert!(!text.contains(" # {"), "exemplar leaked into a sampling-off body");
        let mut ds = DeltaState::new();
        ds.observe(&sample_snapshot());
        let (_, full) = render_split(&ds, None);
        assert!(!full.contains(" # {"));
    }

    #[test]
    fn exemplar_only_change_dirties_the_stage_delta() {
        // A scrape can land between a span close (exemplar set) and the next
        // histogram change; the delta must still ship the new exemplar.
        let m = Metrics::new();
        let mut h = Histogram::new();
        h.record(900);
        let base = TelemetrySnapshot::capture(&m, &[("gateway.stage".to_owned(), h)]);
        let mut ds = DeltaState::new();
        let e1 = ds.observe(&base);
        let (_, full) = render_split(&ds, None);
        let mut held = parse_prom(&full);
        let mut bumped = base.clone();
        bumped.exemplars = vec![(
            "gateway.stage".to_owned(),
            vec![(
                Histogram::bucket_of(900) as u8,
                Exemplar { trace: 5, value_us: 900, ts_us: 1_000 },
            )],
        )];
        let e2 = ds.observe(&bumped);
        assert!(e2 > e1, "exemplar-only change must bump the epoch");
        let (_, delta) = render_split(&ds, Some(e1));
        assert!(delta.contains("trace_id=\"000000000005\""), "{delta}");
        held.apply_delta(&parse_prom(&delta));
        assert_eq!(
            render_prom("gw-0", &held),
            render_prom("gw-0", ds.snapshot()),
            "delta-applied exemplars must match the live view"
        );
        // And an identical re-observation keeps the epoch put.
        assert_eq!(ds.observe(&bumped), e2);
    }

    #[test]
    fn traces_body_lists_and_renders_timelines() {
        let mut c = Collector::new();
        c.enable_sampling(crate::obs::SamplerConfig {
            head_every: 1,
            ..crate::obs::SamplerConfig::default()
        });
        let mk = |c: &mut Collector, at: u64, dur: u64| {
            let t = c.new_trace();
            let root = c.begin_span(t, 0, "journey", None, 0, SimTime(at));
            let hop = c.begin_span(t, root, "itinerary.hop", Some(0), 1, SimTime(at + 10));
            c.end_span(hop, SimTime(at + dur / 2));
            c.end_span(root, SimTime(at + dur));
            t
        };
        let slow = mk(&mut c, 0, 9_000_000);
        let fast = mk(&mut c, 20_000_000, 50_000);
        let body = render_traces_body(&c, "/traces");
        assert!(body.starts_with("traces 2\n"), "{body}");
        let slow_pos = body.find(&format!("trace {slow:012}")).unwrap();
        let fast_pos = body.find(&format!("trace {fast:012}")).unwrap();
        assert!(slow_pos < fast_pos, "longest trace must list first:\n{body}");
        assert!(body.contains("root=journey dur_us=9000000 class=head spans=2"), "{body}");
        assert!(body.contains("itinerary.hop[0]"), "timeline missing:\n{body}");

        let filtered = render_traces_body(&c, "/traces?stage=journey&min_us=1000000&limit=5");
        assert!(filtered.starts_with("traces 1\n"), "{filtered}");
        assert!(filtered.contains(&format!("trace {slow:012}")));

        let single = render_traces_body(&c, &format!("/traces?trace={slow}"));
        assert!(single.starts_with(&format!("trace {slow:012}\n")), "{single}");
        assert!(single.contains("journey"));
        assert_eq!(
            render_traces_body(&c, "/traces?trace=999"),
            "trace 000000000999 not retained\n"
        );
    }

    // The exemplar-bearing delta contract, pinned adversarially: any mix of
    // histogram records (each stamping a fresh exemplar into its bucket),
    // counter bumps and idle observations — scraped as deltas — reconstructs
    // a snapshot whose rendering (exemplar suffixes included) is
    // byte-identical to full-body scraping at every step.
    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(48))]
        #[test]
        fn exemplar_bearing_delta_stream_round_trips(
            ops in proptest::collection::vec((0u8..3, 1u64..200_000), 1..24),
        ) {
            let mut m = Metrics::new();
            let mut h = Histogram::new();
            let mut exes: std::collections::BTreeMap<u8, Exemplar> =
                std::collections::BTreeMap::new();
            let mut ds = DeltaState::new();
            let mut held = TelemetrySnapshot::default();
            let mut last_epoch: Option<u64> = None;
            for (step, (op, val)) in ops.iter().enumerate() {
                match op {
                    0 => {
                        h.record(*val);
                        exes.insert(
                            Histogram::bucket_of(*val) as u8,
                            Exemplar { trace: *val, value_us: *val, ts_us: step as u64 + 1 },
                        );
                    }
                    1 => m.bump("c.hot", *val as f64),
                    _ => {} // idle scrape: nothing changed
                }
                let mut snap =
                    TelemetrySnapshot::capture(&m, &[("s.rtt".to_owned(), h.clone())]);
                snap.exemplars = vec![(
                    "s.rtt".to_owned(),
                    exes.iter().map(|(b, e)| (*b, *e)).collect(),
                )];
                ds.observe(&snap);
                let since = last_epoch.filter(|&s| ds.can_delta(s));
                let mut body = String::new();
                ds.render_into("gw-0", since, &mut body);
                let hd = parse_epoch_header(&body).expect("header");
                if hd.base.is_some() {
                    held.apply_delta(&parse_prom(&body));
                } else {
                    held = parse_prom(&body);
                }
                last_epoch = Some(hd.epoch);
                proptest::prop_assert_eq!(
                    render_prom("gw-0", &held),
                    render_prom("gw-0", ds.snapshot())
                );
            }
        }
    }
}
