//! Operational telemetry: Prometheus-style exposition, health probes and the
//! flight recorder.
//!
//! PRs 1–3 gave every node raw counters ([`crate::metrics`]) and causal
//! latency histograms ([`crate::obs`]); this module turns them into signals
//! another *node in the simulation* can consume. Gateways and MAS servers
//! answer `GET /metrics` with the text exposition produced by
//! [`render_prom`], and `GET /healthz` with a liveness document — served over
//! the same modeled links as protocol traffic, so a monitor sees exactly the
//! staleness and loss a real scraper would. [`parse_prom`] is the inverse,
//! used by the in-sim monitor ([`crate::slo`]) and by round-trip tests.
//!
//! The [`FlightRecorder`] is the post-mortem half: a bounded ring of recent
//! span/alert lines for one node, dumped to
//! `target/flightrec/<scenario>-<node>.jsonl` when an alert fires or a soak
//! invariant fails, so a red CI run ships its own diagnosis.
//!
//! Everything here is deterministic: snapshots sort by name, exposition
//! output is byte-stable across runs and shard counts, and nothing consults
//! the wall clock.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::http::{reply, HttpRequest, HttpStatus};
use crate::metrics::{Metrics, KEY_QUEUE_DEPTH};
use crate::obs::{Collector, Histogram};
use crate::sim::{Ctx, NodeId};
use crate::time::SimTime;

/// Scrape endpoint path served by gateway and MAS nodes.
pub const PATH_METRICS: &str = "/metrics";
/// Liveness endpoint path served by gateway and MAS nodes.
pub const PATH_HEALTHZ: &str = "/healthz";

/// Shared histogram family for per-stage latencies (one family, a `stage`
/// label per series — the idiomatic Prometheus shape for homogeneous units).
pub const STAGE_FAMILY: &str = "pdagent_stage_duration_us";

/// A deterministic point-in-time copy of one node's telemetry: named
/// counters (including the built-in byte/message counters), gauges, and the
/// per-stage latency histograms. Everything is sorted by name, so two
/// captures of identical state render identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// `(key, value)` counters, sorted by key.
    pub counters: Vec<(String, f64)>,
    /// `(key, value)` gauges, sorted by key.
    pub gauges: Vec<(String, f64)>,
    /// `(stage, histogram)`, sorted by stage name.
    pub stages: Vec<(String, Histogram)>,
}

impl TelemetrySnapshot {
    /// Capture from a node's [`Metrics`] plus stage histograms (typically
    /// the simulation collector's; pass `&[]` when observability is off —
    /// the exposition simply omits the histogram families).
    pub fn capture(metrics: &Metrics, stages: &[(String, Histogram)]) -> TelemetrySnapshot {
        let mut counters: Vec<(String, f64)> = vec![
            ("bytes_received".to_owned(), metrics.bytes_received as f64),
            ("bytes_sent".to_owned(), metrics.bytes_sent as f64),
            ("msgs_dropped".to_owned(), metrics.msgs_dropped as f64),
            ("msgs_received".to_owned(), metrics.msgs_received as f64),
            ("msgs_sent".to_owned(), metrics.msgs_sent as f64),
        ];
        counters.extend(metrics.counters_sorted().into_iter().map(|(k, v)| (k.to_owned(), v)));
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let gauges: Vec<(String, f64)> =
            metrics.gauges_sorted().into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
        let mut stages: Vec<(String, Histogram)> = stages.to_vec();
        stages.sort_by(|a, b| a.0.cmp(&b.0));
        TelemetrySnapshot { counters, gauges, stages }
    }

    /// Read a counter by its original key (0 if absent).
    pub fn counter(&self, key: &str) -> f64 {
        match self.counters.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.counters[i].1,
            Err(_) => 0.0,
        }
    }

    /// Read a gauge by its original key (0 if absent).
    pub fn gauge(&self, key: &str) -> f64 {
        match self.gauges.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.gauges[i].1,
            Err(_) => 0.0,
        }
    }

    /// The latency histogram for one stage, if present.
    pub fn stage(&self, name: &str) -> Option<&Histogram> {
        match self.stages.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => Some(&self.stages[i].1),
            Err(_) => None,
        }
    }
}

/// Map a free-form telemetry key to an exposition metric-name fragment:
/// anything outside `[a-zA-Z0-9_]` becomes `_` (`gateway.replays` →
/// `gateway_replays`). The original spelling still rides in the `key` label,
/// so parsing is lossless.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

/// Exposition-format label-value escaping: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// Render a float the way the exposition format expects: integers without a
/// trailing `.0` (counters are conceptually integral), everything else via
/// the shortest round-trip `Display`.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render a snapshot as Prometheus text exposition.
///
/// Families are `pdagent_<sanitized-key>_total` (counters) and
/// `pdagent_<sanitized-key>` (gauges), each sample labeled with the serving
/// `instance` and its original `key` spelling; stage histograms share the
/// [`STAGE_FAMILY`] family (`_bucket`/`_sum`/`_count` plus a `_max` gauge so
/// the exact observed maximum survives the round trip). Output is sorted and
/// byte-stable: identical state renders identically on every run and under
/// every shard count.
pub fn render_prom(instance: &str, snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let inst = escape_label(instance);

    // Counters and gauges: group samples by sanitized family name (distinct
    // keys can collide post-sanitization; they become one family with two
    // `key`-labeled series).
    let render_scalars = |out: &mut String, items: &[(String, f64)], kind: &str, total: bool| {
        let mut rows: Vec<(String, &str, f64)> = items
            .iter()
            .map(|(k, v)| {
                let mut fam = format!("pdagent_{}", sanitize(k));
                if total {
                    fam.push_str("_total");
                }
                (fam, k.as_str(), *v)
            })
            .collect();
        rows.sort_by(|a, b| (a.0.as_str(), a.1).cmp(&(b.0.as_str(), b.1)));
        let mut last_fam = "";
        for (fam, key, v) in &rows {
            if fam != last_fam {
                let _ = writeln!(out, "# TYPE {fam} {kind}");
                last_fam = fam;
            }
            let _ = writeln!(
                out,
                "{fam}{{instance=\"{inst}\",key=\"{}\"}} {}",
                escape_label(key),
                fmt_value(*v)
            );
        }
    };
    render_scalars(&mut out, &snap.counters, "counter", true);
    render_scalars(&mut out, &snap.gauges, "gauge", false);

    if snap.stages.is_empty() {
        return out;
    }
    let _ = writeln!(out, "# TYPE {STAGE_FAMILY} histogram");
    for (stage, h) in &snap.stages {
        let labels = format!("instance=\"{inst}\",stage=\"{}\"", escape_label(stage));
        let counts = h.bucket_counts();
        let hi = counts.iter().rposition(|&n| n > 0).unwrap_or(0);
        let mut cum = 0u64;
        for (i, &n) in counts.iter().enumerate().take(hi + 1) {
            cum += n;
            let _ = writeln!(
                out,
                "{STAGE_FAMILY}_bucket{{{labels},le=\"{}\"}} {cum}",
                Histogram::bucket_upper(i)
            );
        }
        let _ = writeln!(out, "{STAGE_FAMILY}_bucket{{{labels},le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{STAGE_FAMILY}_sum{{{labels}}} {}", h.sum());
        let _ = writeln!(out, "{STAGE_FAMILY}_count{{{labels}}} {}", h.count());
    }
    let _ = writeln!(out, "# TYPE {STAGE_FAMILY}_max gauge");
    for (stage, h) in &snap.stages {
        let _ = writeln!(
            out,
            "{STAGE_FAMILY}_max{{instance=\"{inst}\",stage=\"{}\"}} {}",
            escape_label(stage),
            h.max()
        );
    }
    out
}

/// A parsed sample's `(label, value)` pairs, in line order.
type Labels = Vec<(String, String)>;

/// One parsed exposition sample: name, labels, value.
fn parse_sample(line: &str) -> Option<(&str, Labels, f64)> {
    let brace = line.find('{')?;
    let name = &line[..brace];
    let rest = &line[brace + 1..];
    let mut labels = Vec::new();
    let mut chars = rest.char_indices();
    let mut key_start = 0;
    loop {
        // Label key up to '='.
        let eq = loop {
            match chars.next() {
                Some((i, '=')) => break i,
                Some((i, '}')) => {
                    // Empty label set or trailing comma; value follows.
                    let value: f64 = rest[i + 1..].trim().parse().ok()?;
                    return Some((name, labels, value));
                }
                Some(_) => continue,
                None => return None,
            }
        };
        let key = rest[key_start..eq].trim_start_matches(',').to_owned();
        // Opening quote.
        match chars.next() {
            Some((_, '"')) => {}
            _ => return None,
        }
        // Value until the unescaped closing quote.
        let mut raw = String::new();
        loop {
            match chars.next() {
                Some((_, '\\')) => {
                    raw.push('\\');
                    if let Some((_, c)) = chars.next() {
                        raw.push(c);
                    }
                }
                Some((_, '"')) => break,
                Some((_, c)) => raw.push(c),
                None => return None,
            }
        }
        labels.push((key, unescape_label(&raw)));
        // After a label value: ',' continues, '}' ends.
        match chars.next() {
            Some((i, ',')) => key_start = i + 1,
            Some((i, '}')) => {
                let value: f64 = rest[i + 1..].trim().parse().ok()?;
                return Some((name, labels, value));
            }
            _ => return None,
        }
    }
}

fn label<'a>(labels: &'a [(String, String)], key: &str) -> Option<&'a str> {
    labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

/// Parse text exposition produced by [`render_prom`] back into a
/// [`TelemetrySnapshot`]. Counter/gauge keys come from the `key` label (so
/// sanitization is lossless); stage histograms are rebuilt from the
/// cumulative `_bucket` series plus `_sum` and `_max`. Unknown lines are
/// ignored, making the parser tolerant of future families.
pub fn parse_prom(text: &str) -> TelemetrySnapshot {
    let mut snap = TelemetrySnapshot::default();
    let bucket_name = format!("{STAGE_FAMILY}_bucket");
    let sum_name = format!("{STAGE_FAMILY}_sum");
    let count_name = format!("{STAGE_FAMILY}_count");
    let max_name = format!("{STAGE_FAMILY}_max");
    // stage → (upper bound → cumulative count), plus sum/max per stage.
    let mut cums: BTreeMap<String, BTreeMap<u64, u64>> = BTreeMap::new();
    let mut sums: BTreeMap<String, u64> = BTreeMap::new();
    let mut maxes: BTreeMap<String, u64> = BTreeMap::new();
    // family → declared kind from `# TYPE` lines. Classifying by declared
    // type (not the `_total` suffix) keeps a *gauge* whose key sanitizes to
    // `..._total` (e.g. `queue.total`) a gauge through the round trip.
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            if let Some(decl) = line.strip_prefix("# TYPE ") {
                let mut parts = decl.split_whitespace();
                if let (Some(fam), Some(kind)) = (parts.next(), parts.next()) {
                    types.insert(fam.to_owned(), kind.to_owned());
                }
            }
            continue;
        }
        let Some((name, labels, value)) = parse_sample(line) else { continue };
        if name == bucket_name {
            let (Some(stage), Some(le)) = (label(&labels, "stage"), label(&labels, "le")) else {
                continue;
            };
            if le == "+Inf" {
                continue; // same as the _count series
            }
            if let Ok(upper) = le.parse::<u64>() {
                cums.entry(stage.to_owned()).or_default().insert(upper, value as u64);
            }
        } else if name == sum_name {
            if let Some(stage) = label(&labels, "stage") {
                sums.insert(stage.to_owned(), value as u64);
            }
        } else if name == max_name {
            if let Some(stage) = label(&labels, "stage") {
                maxes.insert(stage.to_owned(), value as u64);
            }
        } else if name == count_name {
            // Redundant with the bucket series; nothing to record.
        } else if let Some(key) = label(&labels, "key") {
            // Prefer the declared `# TYPE`; fall back to the suffix
            // heuristic for expositions from other producers.
            let is_counter = match types.get(name).map(String::as_str) {
                Some("counter") => true,
                Some(_) => false,
                None => name.ends_with("_total"),
            };
            if is_counter {
                snap.counters.push((key.to_owned(), value));
            } else {
                snap.gauges.push((key.to_owned(), value));
            }
        }
    }
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    for (stage, by_upper) in cums {
        let mut buckets = [0u64; crate::obs::HISTOGRAM_BUCKETS];
        let mut prev = 0u64;
        for (upper, cum) in by_upper {
            let idx = if upper == 0 { 0 } else { (upper + 1).trailing_zeros() as usize };
            if idx < buckets.len() {
                buckets[idx] = cum.saturating_sub(prev);
            }
            prev = cum;
        }
        let sum = sums.get(&stage).copied().unwrap_or(0);
        let max = maxes.get(&stage).copied().unwrap_or(0);
        snap.stages.push((stage, Histogram::from_parts(&buckets, sum, max)));
    }
    snap
}

/// Render the `/healthz` document: a one-line JSON liveness statement. The
/// probe's value is *reaching* the node over the modeled link — the body
/// stays minimal and deterministic.
pub fn render_health(instance: &str, now: SimTime) -> String {
    format!("{{\"status\":\"ok\",\"instance\":\"{}\",\"now_us\":{}}}", escape_label(instance), now.0)
}

/// Server-side handler: if `req` is a `GET` for [`PATH_METRICS`] or
/// [`PATH_HEALTHZ`], answer it (uncached — scrapes must never enter replay
/// caches) and return `true`; otherwise leave the request for the caller's
/// protocol dispatch. Zero-cost when unused: nothing is rendered until a
/// scrape actually arrives, and without a collector the exposition carries
/// no histogram families.
pub fn serve_telemetry(ctx: &mut Ctx<'_>, from: NodeId, req: &HttpRequest, instance: &str) -> bool {
    if req.method != "GET" {
        return false;
    }
    match req.path.as_str() {
        PATH_METRICS => {
            let stages: Vec<(String, Histogram)> = ctx
                .obs_collector()
                .map(|c| {
                    c.stages().iter().map(|(n, h)| ((*n).to_owned(), (*h).clone())).collect()
                })
                .unwrap_or_default();
            let snap = TelemetrySnapshot::capture(ctx.metrics(), &stages);
            let mut body = render_prom(instance, &snap);
            // Engine-level gauge: the hosting simulator's event-queue depth,
            // read off the scheduler's O(1) occupancy counter. Zero-padded to
            // a fixed width because the value is partition-*dependent* (each
            // shard has its own queue) while scrape bodies must cost the same
            // bytes on the wire under every shard count — otherwise transfer
            // times, and with them the monitor-plane SLO digests, would
            // diverge between partitionings.
            let _ = writeln!(body, "# TYPE pdagent_sim_queue_depth gauge");
            let _ = writeln!(
                body,
                "pdagent_sim_queue_depth{{instance=\"{}\",key=\"{KEY_QUEUE_DEPTH}\"}} {:012}",
                escape_label(instance),
                ctx.queue_depth()
            );
            ctx.metrics().bump("telemetry.scrapes", 1.0);
            reply(ctx, from, req, HttpStatus::Ok, body.into_bytes());
            true
        }
        PATH_HEALTHZ => {
            let body = render_health(instance, ctx.now());
            ctx.metrics().bump("telemetry.probes", 1.0);
            reply(ctx, from, req, HttpStatus::Ok, body.into_bytes());
            true
        }
        _ => false,
    }
}

/// A bounded ring of recent JSONL lines for one node — the in-memory half
/// of the flight recorder. Pushing beyond the capacity evicts the oldest
/// line, so a dump always holds the *most recent* history.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    cap: usize,
    lines: VecDeque<String>,
}

impl FlightRecorder {
    /// Recorder keeping at most `cap` lines.
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder { cap: cap.max(1), lines: VecDeque::new() }
    }

    /// Append a line, evicting the oldest when full.
    pub fn push(&mut self, line: String) {
        if self.lines.len() == self.cap {
            self.lines.pop_front();
        }
        self.lines.push_back(line);
    }

    /// Number of retained lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The retained lines, oldest first, newline-terminated.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Build a recorder from a [`Collector`]: the spans recorded *on*
    /// `node` (by local id) plus every alert event, merged in time order,
    /// keeping the most recent `cap` lines.
    pub fn capture(collector: &Collector, node: NodeId, cap: usize) -> FlightRecorder {
        let mut timed: Vec<(u64, String)> = Vec::new();
        for s in collector.spans().iter().filter(|s| s.node == node) {
            let mut line = format!(
                "{{\"record\":\"span\",\"trace\":{},\"span\":{},\"parent\":{},\"name\":\"{}\"",
                s.trace, s.id, s.parent, s.name
            );
            if let Some(i) = s.index {
                let _ = write!(line, ",\"index\":{i}");
            }
            let _ = write!(line, ",\"node\":{},\"begin_us\":{}", s.node, s.begin.0);
            if let Some(e) = s.end {
                let _ = write!(line, ",\"end_us\":{}", e.0);
            }
            line.push('}');
            timed.push((s.begin.0, line));
        }
        for e in collector.events() {
            timed.push((e.at.0, format!("{{\"record\":\"alert\",{}", &e.to_json()[1..])));
        }
        timed.sort_by_key(|t| t.0);
        let mut rec = FlightRecorder::new(cap);
        for (_, line) in timed {
            rec.push(line);
        }
        rec
    }
}

/// Write a recorder to `<dir>/<scenario>-<node>.jsonl`, creating the
/// directory as needed. Returns the written path.
pub fn dump_flight(
    dir: &Path,
    scenario: &str,
    node: &str,
    rec: &FlightRecorder,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{scenario}-{node}.jsonl"));
    std::fs::write(&path, rec.to_jsonl())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::ObsEvent;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut m = Metrics::new();
        m.bytes_sent = 1000;
        m.msgs_sent = 10;
        m.bump("gateway.replays", 3.0);
        m.bump("http.gave_up", 1.0);
        m.set_gauge("gateway.replay_entries", 7.0);
        let mut h = Histogram::new();
        for v in [0u64, 3, 70, 900, 900, 16000] {
            h.record(v);
        }
        TelemetrySnapshot::capture(&m, &[("gateway.stage".to_owned(), h)])
    }

    #[test]
    fn exposition_renders_sorted_and_typed() {
        let text = render_prom("gw-0", &sample_snapshot());
        let lines: Vec<&str> = text.lines().collect();
        // TYPE precedes its samples; counters end in _total.
        let ty = lines.iter().position(|l| *l == "# TYPE pdagent_gateway_replays_total counter");
        let sample = lines
            .iter()
            .position(|l| l.starts_with("pdagent_gateway_replays_total{instance=\"gw-0\""));
        assert!(ty.unwrap() < sample.unwrap(), "{text}");
        assert!(text.contains("key=\"gateway.replays\"} 3"), "{text}");
        assert!(text.contains("# TYPE pdagent_gateway_replay_entries gauge"), "{text}");
        // Samples sorted by family name.
        let samples: Vec<&&str> =
            lines.iter().filter(|l| !l.starts_with('#') && l.contains("_total")).collect();
        let mut sorted = samples.clone();
        sorted.sort();
        assert_eq!(samples, sorted, "counter samples must be sorted");
    }

    #[test]
    fn exposition_histogram_buckets_are_cumulative_and_monotone() {
        let text = render_prom("gw-0", &sample_snapshot());
        let mut cums = Vec::new();
        for line in text.lines() {
            if line.starts_with("pdagent_stage_duration_us_bucket{") {
                let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                cums.push(v);
            }
        }
        assert!(cums.len() >= 2);
        assert!(cums.windows(2).all(|w| w[0] <= w[1]), "buckets not monotone: {cums:?}");
        assert_eq!(*cums.last().unwrap(), 6, "+Inf bucket must equal the count");
        assert!(text.contains("pdagent_stage_duration_us_sum{"), "{text}");
        assert!(text.contains("pdagent_stage_duration_us_max{"), "{text}");
    }

    #[test]
    fn label_escaping_round_trips() {
        let weird = "gw\"0\\path\nend";
        let esc = escape_label(weird);
        assert!(!esc.contains('\n'), "newline must be escaped: {esc}");
        assert_eq!(unescape_label(&esc), weird);
        // And through a full render/parse cycle via the instance label.
        let text = render_prom(weird, &sample_snapshot());
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, labels, _) = parse_sample(line).expect(line);
            assert_eq!(label(&labels, "instance"), Some(weird));
        }
    }

    #[test]
    fn parse_inverts_render() {
        let snap = sample_snapshot();
        let back = parse_prom(&render_prom("gw-0", &snap));
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.stages.len(), 1);
        let (name, h) = &back.stages[0];
        assert_eq!(name, "gateway.stage");
        let (_, orig) = &snap.stages[0];
        assert_eq!(h, orig, "histogram must survive the round trip exactly");
        assert_eq!(back.stage("gateway.stage").unwrap().p99(), orig.p99());
    }

    #[test]
    fn gauge_with_total_suffix_stays_a_gauge_through_round_trip() {
        // `queue.total` sanitizes to the family `pdagent_queue_total` — the
        // same shape as a counter family. The declared `# TYPE` line must
        // win over the suffix heuristic, or federation re-exposure would
        // silently migrate the series between sections.
        let mut m = Metrics::new();
        m.set_gauge("queue.total", 5.0);
        m.bump("requests.total", 9.0);
        let snap = TelemetrySnapshot::capture(&m, &[]);
        let back = parse_prom(&render_prom("gw-0", &snap));
        assert_eq!(back.gauge("queue.total"), 5.0, "gauge misfiled as counter");
        assert_eq!(back.counter("queue.total"), 0.0);
        assert_eq!(back.counter("requests.total"), 9.0);
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
    }

    #[test]
    fn federation_re_exposure_round_trips_weird_labels_byte_identically() {
        // The federation path re-renders what it parsed: keys with embedded
        // quotes and newlines must survive render → parse → render with the
        // second rendering byte-identical to the first.
        let mut m = Metrics::new();
        m.bump("weird\"key\nwith\\slash", 4.0);
        m.set_gauge("gauge\n\"quoted\"", 2.5);
        let snap = TelemetrySnapshot::capture(&m, &[]);
        let first = render_prom("cell\"0\nx", &snap);
        let back = parse_prom(&first);
        assert_eq!(back.counter("weird\"key\nwith\\slash"), 4.0);
        assert_eq!(back.gauge("gauge\n\"quoted\""), 2.5);
        let second = render_prom("cell\"0\nx", &back);
        assert_eq!(first, second, "re-exposure must be byte-identical");
    }

    #[test]
    fn render_is_stable_across_runs() {
        let a = render_prom("gw-0", &sample_snapshot());
        let b = render_prom("gw-0", &sample_snapshot());
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_reads_by_key() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("gateway.replays"), 3.0);
        assert_eq!(snap.counter("bytes_sent"), 1000.0);
        assert_eq!(snap.counter("nope"), 0.0);
        assert_eq!(snap.gauge("gateway.replay_entries"), 7.0);
        assert!(snap.stage("gateway.stage").is_some());
        assert!(snap.stage("nope").is_none());
    }

    #[test]
    fn health_document_is_deterministic() {
        let h = render_health("mas-1", SimTime(42));
        assert_eq!(h, "{\"status\":\"ok\",\"instance\":\"mas-1\",\"now_us\":42}");
    }

    #[test]
    fn flight_recorder_ring_keeps_most_recent() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..10 {
            rec.push(format!("{{\"i\":{i}}}"));
        }
        assert_eq!(rec.len(), 3);
        let dump = rec.to_jsonl();
        assert!(dump.contains("\"i\":9") && dump.contains("\"i\":7"));
        assert!(!dump.contains("\"i\":6"));
    }

    #[test]
    fn flight_capture_merges_spans_and_alerts_in_time_order() {
        let mut c = Collector::new();
        let t = c.new_trace();
        let s1 = c.begin_span(t, 0, "gateway.stage", None, 5, SimTime(100));
        c.end_span(s1, SimTime(200));
        let s2 = c.begin_span(t, 0, "mas.exec", None, 9, SimTime(150)); // other node
        c.end_span(s2, SimTime(160));
        c.record_event(ObsEvent {
            at: SimTime(150),
            node_label: 77,
            rule: "p99.scrape.rtt".to_owned(),
            instance: "gw-0".to_owned(),
            fired: true,
            value: 9.0,
            limit: 5.0,
            trace: t,
        });
        let rec = FlightRecorder::capture(&c, 5, 16);
        let dump = rec.to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2, "span on node 9 excluded: {dump}");
        assert!(lines[0].contains("\"record\":\"span\""));
        assert!(lines[1].contains("\"record\":\"alert\""));
        assert!(lines[1].contains("\"event\":\"AlertFired\""));
    }
}
