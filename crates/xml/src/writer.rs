//! Document writer.
//!
//! [`XmlWriter`] produces well-formed XML with correct escaping. Two modes:
//! *compact* (the wire form — no whitespace between tags, minimizing the bytes
//! shipped over the wireless link, per the paper's packet-size concern) and
//! *pretty* (indented, for logs and human inspection).

use crate::escape::{escape_attr, escape_text};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Before any content.
    Start,
    /// Inside a start tag (attributes may still be added).
    TagOpen,
    /// After a complete child (tag closed).
    Content,
}

/// A streaming XML writer.
///
/// ```
/// use pdagent_xml::writer::XmlWriter;
/// let mut w = XmlWriter::compact();
/// w.start("pi");
/// w.attr("version", "1");
/// w.start("code");
/// w.text("payload");
/// w.end();
/// w.end();
/// assert_eq!(w.finish(), "<pi version=\"1\"><code>payload</code></pi>");
/// ```
#[derive(Debug)]
pub struct XmlWriter {
    out: String,
    stack: Vec<String>,
    state: State,
    pretty: bool,
    /// Set when the current element has text content, which suppresses
    /// pretty-printing for its end tag (so text round-trips exactly).
    text_content: Vec<bool>,
}

impl XmlWriter {
    /// Writer with no inter-tag whitespace (wire form).
    pub fn compact() -> Self {
        XmlWriter {
            out: String::new(),
            stack: Vec::new(),
            state: State::Start,
            pretty: false,
            text_content: Vec::new(),
        }
    }

    /// Writer that indents nested elements by two spaces.
    pub fn pretty() -> Self {
        XmlWriter { pretty: true, ..XmlWriter::compact() }
    }

    /// Emit the standard XML declaration. Must be the first call if used.
    pub fn declaration(&mut self) {
        assert_eq!(self.state, State::Start, "declaration must come first");
        self.out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if self.pretty {
            self.out.push('\n');
        }
    }

    fn close_open_tag(&mut self) {
        if self.state == State::TagOpen {
            self.out.push('>');
            self.state = State::Content;
        }
    }

    fn newline_indent(&mut self, depth: usize) {
        if self.pretty && !self.out.is_empty() && !self.out.ends_with('\n') {
            self.out.push('\n');
        }
        if self.pretty {
            for _ in 0..depth {
                self.out.push_str("  ");
            }
        }
    }

    /// Open an element. Attributes may be added until the next `start`,
    /// `text` or `end` call.
    pub fn start(&mut self, name: &str) {
        self.close_open_tag();
        let depth = self.stack.len();
        if self.pretty && !self.current_has_text() {
            self.newline_indent(depth);
        }
        self.out.push('<');
        self.out.push_str(name);
        self.stack.push(name.to_owned());
        self.text_content.push(false);
        self.state = State::TagOpen;
    }

    fn current_has_text(&self) -> bool {
        self.text_content.last().copied().unwrap_or(false)
    }

    /// Add an attribute to the element opened by the last `start` call.
    ///
    /// # Panics
    /// Panics if called when no start tag is open for attributes.
    pub fn attr(&mut self, name: &str, value: &str) {
        assert_eq!(
            self.state,
            State::TagOpen,
            "attr() must directly follow start() (element <{:?}>)",
            self.stack.last()
        );
        self.out.push(' ');
        self.out.push_str(name);
        self.out.push_str("=\"");
        self.out.push_str(&escape_attr(value));
        self.out.push('"');
    }

    /// Write escaped character data inside the current element.
    pub fn text(&mut self, text: &str) {
        self.close_open_tag();
        if let Some(flag) = self.text_content.last_mut() {
            *flag = true;
        }
        self.out.push_str(&escape_text(text));
    }

    /// Write a CDATA section. A literal `]]>` in the payload is handled with
    /// the standard section-splitting trick (`]]` ends one section, `>` starts
    /// the next), so any string re-parses identically.
    pub fn cdata(&mut self, data: &str) {
        self.close_open_tag();
        if let Some(flag) = self.text_content.last_mut() {
            *flag = true;
        }
        let parts: Vec<&str> = data.split("]]>").collect();
        for (i, part) in parts.iter().enumerate() {
            self.out.push_str("<![CDATA[");
            self.out.push_str(part);
            if i + 1 < parts.len() {
                self.out.push_str("]]");
            }
            self.out.push_str("]]>");
            if i + 1 < parts.len() {
                self.out.push_str("<![CDATA[>]]>");
            }
        }
    }

    /// Write a comment. `--` inside the payload is replaced by `- -` to keep
    /// the document well-formed.
    pub fn comment(&mut self, text: &str) {
        self.close_open_tag();
        let depth = self.stack.len();
        if self.pretty && !self.current_has_text() {
            self.newline_indent(depth);
        }
        self.out.push_str("<!--");
        self.out.push_str(&text.replace("--", "- -"));
        self.out.push_str("-->");
    }

    /// Close the most recently opened element.
    ///
    /// # Panics
    /// Panics if there is no open element.
    pub fn end(&mut self) {
        let name = self.stack.pop().expect("end() with no open element");
        let had_text = self.text_content.pop().unwrap_or(false);
        match self.state {
            State::TagOpen => {
                self.out.push_str("/>");
            }
            _ => {
                if self.pretty && !had_text {
                    self.newline_indent(self.stack.len());
                }
                self.out.push_str("</");
                self.out.push_str(&name);
                self.out.push('>');
            }
        }
        self.state = State::Content;
    }

    /// Finish the document and return it.
    ///
    /// # Panics
    /// Panics if elements are still open.
    pub fn finish(mut self) -> String {
        assert!(
            self.stack.is_empty(),
            "finish() with unclosed elements: {:?}",
            self.stack
        );
        if self.pretty && !self.out.ends_with('\n') {
            self.out.push('\n');
        }
        self.out
    }

    /// Bytes written so far (useful for size accounting while streaming).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Element;

    #[test]
    fn compact_nested() {
        let mut w = XmlWriter::compact();
        w.start("a");
        w.attr("k", "v");
        w.start("b");
        w.text("t");
        w.end();
        w.start("c");
        w.end();
        w.end();
        assert_eq!(w.finish(), r#"<a k="v"><b>t</b><c/></a>"#);
    }

    #[test]
    fn escaping_in_text_and_attr() {
        let mut w = XmlWriter::compact();
        w.start("a");
        w.attr("q", "say \"hi\" & <go>");
        w.text("1 < 2 & 3 > 2");
        w.end();
        let s = w.finish();
        assert_eq!(
            s,
            r#"<a q="say &quot;hi&quot; &amp; &lt;go&gt;">1 &lt; 2 &amp; 3 &gt; 2</a>"#
        );
        // And it parses back to the same values.
        let el = Element::parse_str(&s).unwrap();
        assert_eq!(el.attr("q"), Some("say \"hi\" & <go>"));
        assert_eq!(el.text(), "1 < 2 & 3 > 2");
    }

    #[test]
    fn pretty_indents_elements_but_not_text() {
        let mut w = XmlWriter::pretty();
        w.declaration();
        w.start("root");
        w.start("child");
        w.text("inline");
        w.end();
        w.start("empty");
        w.end();
        w.end();
        let s = w.finish();
        assert!(s.contains("\n  <child>inline</child>"));
        assert!(s.contains("\n  <empty/>"));
        assert!(s.ends_with("</root>\n"));
    }

    #[test]
    fn declaration_first() {
        let mut w = XmlWriter::compact();
        w.declaration();
        w.start("a");
        w.end();
        assert_eq!(w.finish(), "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_with_open_element_panics() {
        let mut w = XmlWriter::compact();
        w.start("a");
        let _ = w.finish();
    }

    #[test]
    #[should_panic(expected = "attr() must directly follow")]
    fn attr_after_text_panics() {
        let mut w = XmlWriter::compact();
        w.start("a");
        w.text("x");
        w.attr("k", "v");
    }

    #[test]
    fn comment_double_dash_sanitized() {
        let mut w = XmlWriter::compact();
        w.start("a");
        w.comment("x -- y");
        w.end();
        let s = w.finish();
        Element::parse_str(&s).unwrap();
        assert!(s.contains("<!--x - - y-->"));
    }

    #[test]
    fn cdata_simple() {
        let mut w = XmlWriter::compact();
        w.start("a");
        w.cdata("<raw> & stuff");
        w.end();
        let s = w.finish();
        let el = Element::parse_str(&s).unwrap();
        assert_eq!(el.text(), "<raw> & stuff");
    }

    #[test]
    fn cdata_with_embedded_terminator_roundtrips() {
        let mut w = XmlWriter::compact();
        w.start("a");
        w.cdata("x]]>y]]>z");
        w.end();
        let s = w.finish();
        let el = Element::parse_str(&s).unwrap();
        assert_eq!(el.text(), "x]]>y]]>z");
    }

    #[test]
    fn len_tracks_bytes() {
        let mut w = XmlWriter::compact();
        assert!(w.is_empty());
        w.start("a");
        w.end();
        assert_eq!(w.len(), "<a/>".len());
    }
}
