//! A minimal DOM built on top of the pull parser.
//!
//! [`Element`] is an owned tree node; it is what the PDAgent wire formats
//! (Packed Information, agent code documents, result documents) are built
//! from and serialized to.

use crate::error::{XmlError, XmlResult};
use crate::pull::{PullParser, XmlEvent};
use crate::writer::XmlWriter;

/// A node in the DOM tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// A run of character data (entity-decoded; CDATA merged in verbatim).
    Text(String),
    /// A comment (preserved so documents round-trip).
    Comment(String),
}

/// An XML element: name, attributes, children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    name: String,
    attributes: Vec<(String, String)>,
    children: Vec<Node>,
}

impl Element {
    /// Create an empty element.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), attributes: Vec::new(), children: Vec::new() }
    }

    /// Builder-style: add an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Builder-style: add a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: add a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Element name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All attributes in document order.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attributes
    }

    /// Look up an attribute value.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Look up an attribute, erroring with a descriptive message if missing.
    /// Convenience for wire-format decoding.
    pub fn require_attr(&self, name: &str) -> XmlResult<&str> {
        self.attr(name).ok_or_else(|| XmlError::Syntax {
            offset: 0,
            message: format!("element <{}> missing required attribute {name:?}", self.name),
        })
    }

    /// Set (insert or replace) an attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
    }

    /// All child nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.children
    }

    /// Append a child element.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Append a text node.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// Iterate over child *elements* only.
    pub fn children(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// First child element with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children().find(|e| e.name == name)
    }

    /// First child element with the given name, or a descriptive error.
    pub fn require_child(&self, name: &str) -> XmlResult<&Element> {
        self.child(name).ok_or_else(|| XmlError::Syntax {
            offset: 0,
            message: format!("element <{}> missing required child <{name}>", self.name),
        })
    }

    /// All child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.children().filter(move |e| e.name == name)
    }

    /// Concatenated text content of *direct* text/CDATA children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let Node::Text(t) = node {
                out.push_str(t);
            }
        }
        out
    }

    /// Text of the first child element with the given name (common accessor
    /// for `<param name="..">value</param>`-style formats).
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.child(name).map(|e| e.text())
    }

    /// Parse a document from a string; returns the root element.
    ///
    /// Comments are preserved as [`Node::Comment`] children; whitespace-only
    /// text runs that sit between elements are dropped (they are formatting,
    /// not data) unless the element has *only* text children.
    pub fn parse_str(input: &str) -> XmlResult<Element> {
        let mut parser = PullParser::new(input);
        Self::parse_with(&mut parser)
    }

    /// Parse a document from bytes (validating UTF-8).
    pub fn parse_bytes(input: &[u8]) -> XmlResult<Element> {
        let mut parser = PullParser::from_bytes(input)?;
        Self::parse_with(&mut parser)
    }

    fn parse_with(parser: &mut PullParser<'_>) -> XmlResult<Element> {
        // Skip prolog (declaration, comments, PIs) until the root start tag.
        loop {
            match parser.next_event()? {
                XmlEvent::Declaration { .. }
                | XmlEvent::Comment(_)
                | XmlEvent::ProcessingInstruction { .. } => continue,
                XmlEvent::StartElement { name, attributes, self_closing } => {
                    let mut root = Element::new(name);
                    root.attributes =
                        attributes.into_iter().map(|a| (a.name, a.value)).collect();
                    if !self_closing {
                        Self::fill(&mut root, parser)?;
                    }
                    // Drain the epilog so trailing garbage is diagnosed.
                    loop {
                        match parser.next_event()? {
                            XmlEvent::Eof => break,
                            XmlEvent::Comment(_)
                            | XmlEvent::ProcessingInstruction { .. } => continue,
                            _ => unreachable!("parser enforces single root"),
                        }
                    }
                    root.normalize_whitespace();
                    return Ok(root);
                }
                XmlEvent::Eof => return Err(XmlError::NoRootElement),
                XmlEvent::Text(_) | XmlEvent::CData(_) | XmlEvent::EndElement { .. } => {
                    unreachable!("parser rejects these before the root")
                }
            }
        }
    }

    fn fill(parent: &mut Element, parser: &mut PullParser<'_>) -> XmlResult<()> {
        loop {
            match parser.next_event()? {
                XmlEvent::StartElement { name, attributes, self_closing } => {
                    let mut el = Element::new(name);
                    el.attributes =
                        attributes.into_iter().map(|a| (a.name, a.value)).collect();
                    if !self_closing {
                        Self::fill(&mut el, parser)?;
                    }
                    parent.children.push(Node::Element(el));
                }
                XmlEvent::EndElement { .. } => return Ok(()),
                XmlEvent::Text(t) => parent.children.push(Node::Text(t)),
                XmlEvent::CData(t) => parent.children.push(Node::Text(t)),
                XmlEvent::Comment(c) => parent.children.push(Node::Comment(c)),
                XmlEvent::ProcessingInstruction { .. } | XmlEvent::Declaration { .. } => {}
                XmlEvent::Eof => {
                    return Err(XmlError::UnexpectedEof { context: "element content" })
                }
            }
        }
    }

    /// Drop whitespace-only text children of elements that also have element
    /// children (i.e. indentation), recursively; merge adjacent text runs.
    fn normalize_whitespace(&mut self) {
        let has_element_child =
            self.children.iter().any(|n| matches!(n, Node::Element(_)));
        if has_element_child {
            self.children.retain(|n| match n {
                Node::Text(t) => !t.trim().is_empty(),
                _ => true,
            });
        }
        // Merge adjacent text runs (CDATA + text, or text split by comments removal).
        let mut merged: Vec<Node> = Vec::with_capacity(self.children.len());
        for node in self.children.drain(..) {
            match (merged.last_mut(), node) {
                (Some(Node::Text(prev)), Node::Text(next)) => prev.push_str(&next),
                (_, node) => merged.push(node),
            }
        }
        self.children = merged;
        for node in &mut self.children {
            if let Node::Element(e) = node {
                e.normalize_whitespace();
            }
        }
    }

    /// Serialize to a compact (no indentation) document string with an XML
    /// declaration. This is the wire form used for Packed Information.
    pub fn to_document_string(&self) -> String {
        let mut w = XmlWriter::compact();
        w.declaration();
        self.write_to(&mut w);
        w.finish()
    }

    /// Serialize to a pretty-printed document string (for logs and docs).
    pub fn to_pretty_string(&self) -> String {
        let mut w = XmlWriter::pretty();
        w.declaration();
        self.write_to(&mut w);
        w.finish()
    }

    /// Write this element (recursively) into an [`XmlWriter`].
    pub fn write_to(&self, w: &mut XmlWriter) {
        w.start(&self.name);
        for (k, v) in &self.attributes {
            w.attr(k, v);
        }
        for node in &self.children {
            match node {
                Node::Element(e) => e.write_to(w),
                Node::Text(t) => w.text(t),
                Node::Comment(c) => w.comment(c),
            }
        }
        w.end();
    }

    /// Total number of elements in this subtree (including `self`).
    pub fn element_count(&self) -> usize {
        1 + self.children().map(Element::element_count).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let el = Element::new("pi")
            .with_attr("version", "1")
            .with_child(Element::new("code").with_attr("id", "7").with_text("abc"))
            .with_child(Element::new("param").with_text("x"));
        assert_eq!(el.name(), "pi");
        assert_eq!(el.attr("version"), Some("1"));
        assert_eq!(el.child("code").unwrap().text(), "abc");
        assert_eq!(el.child_text("param").as_deref(), Some("x"));
        assert_eq!(el.child("missing"), None);
        assert_eq!(el.element_count(), 3);
    }

    #[test]
    fn set_attr_replaces() {
        let mut el = Element::new("a");
        el.set_attr("k", "1");
        el.set_attr("k", "2");
        assert_eq!(el.attrs().len(), 1);
        assert_eq!(el.attr("k"), Some("2"));
    }

    #[test]
    fn parse_nested_document() {
        let doc = Element::parse_str(
            r#"<?xml version="1.0"?>
            <pi version="1">
              <header><id>ma-1</id><key>k0</key></header>
              <params>
                <param name="from">A</param>
                <param name="to">B</param>
              </params>
            </pi>"#,
        )
        .unwrap();
        assert_eq!(doc.name(), "pi");
        let params: Vec<_> = doc.child("params").unwrap().children_named("param").collect();
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].attr("name"), Some("from"));
        assert_eq!(params[1].text(), "B");
        assert_eq!(doc.child("header").unwrap().child_text("id").unwrap(), "ma-1");
    }

    #[test]
    fn whitespace_between_elements_dropped_but_text_kept() {
        let doc = Element::parse_str("<a>\n  <b>  keep me  </b>\n</a>").unwrap();
        assert_eq!(doc.nodes().len(), 1);
        assert_eq!(doc.child("b").unwrap().text(), "  keep me  ");
    }

    #[test]
    fn cdata_merges_with_text() {
        let doc = Element::parse_str("<a>pre<![CDATA[<mid>]]>post</a>").unwrap();
        assert_eq!(doc.text(), "pre<mid>post");
        assert_eq!(doc.nodes().len(), 1);
    }

    #[test]
    fn comments_preserved() {
        let doc = Element::parse_str("<a><!-- note --><b/></a>").unwrap();
        assert!(doc.nodes().iter().any(|n| matches!(n, Node::Comment(c) if c == " note ")));
    }

    #[test]
    fn document_roundtrip_compact() {
        let el = Element::new("pi")
            .with_attr("v", "1 & 2")
            .with_child(Element::new("t").with_text("a<b>&c"));
        let s = el.to_document_string();
        let back = Element::parse_str(&s).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn document_roundtrip_pretty() {
        let el = Element::new("root")
            .with_child(Element::new("x").with_text("text body"))
            .with_child(Element::new("y").with_attr("q", "\"quoted\""));
        let s = el.to_pretty_string();
        let back = Element::parse_str(&s).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn require_helpers_give_useful_errors() {
        let el = Element::new("pi");
        let err = el.require_attr("version").unwrap_err();
        assert!(err.to_string().contains("version"));
        let err = el.require_child("code").unwrap_err();
        assert!(err.to_string().contains("code"));
    }

    #[test]
    fn parse_bytes_validates_utf8() {
        assert!(Element::parse_bytes(b"<a>ok</a>").is_ok());
        assert!(matches!(
            Element::parse_bytes(b"<a>\xC3</a>"),
            Err(XmlError::InvalidUtf8 { .. })
        ));
    }

    #[test]
    fn deep_nesting() {
        let mut s = String::new();
        let depth = 200;
        for _ in 0..depth {
            s.push_str("<d>");
        }
        s.push_str("leaf");
        for _ in 0..depth {
            s.push_str("</d>");
        }
        let doc = Element::parse_str(&s).unwrap();
        assert_eq!(doc.element_count(), depth);
    }
}
