//! # pdagent-xml
//!
//! A lightweight XML library modeled on [kXML], the J2ME pull-parser API that
//! the original PDAgent prototype used for encoding Packed Information (PI),
//! mobile-agent code and result documents.
//!
//! [kXML]: http://kxml.org
//!
//! The crate provides three layers, mirroring kXML's feature set
//! (pull parsing, a minimal DOM, and document writing):
//!
//! * [`pull`] — an event-based *pull* parser ([`pull::PullParser`]) that yields
//!   [`pull::XmlEvent`]s one at a time. This is the lowest-allocation way to
//!   consume a document and is what the higher layers are built on.
//! * [`dom`] — a small in-memory tree ([`dom::Element`]) with convenience
//!   accessors (`child`, `attr`, `text`), built from the pull parser.
//! * [`writer`] — [`writer::XmlWriter`] for producing well-formed documents,
//!   with optional pretty-printing.
//!
//! The dialect supported is the subset the PDAgent wire formats need:
//! elements, attributes (single- or double-quoted), character data, CDATA
//! sections, comments, processing instructions, the XML declaration, and
//! DOCTYPE declarations (skipped, as kXML does in its "relaxed" mode).
//! The five predefined entities (`&lt; &gt; &amp; &apos; &quot;`) and numeric
//! character references (`&#NN;`, `&#xHH;`) are decoded.
//!
//! ```
//! use pdagent_xml::dom::Element;
//!
//! let doc = Element::parse_str(
//!     "<pi version=\"1\"><code id=\"ma-7\">QkFTRTY0</code></pi>").unwrap();
//! assert_eq!(doc.name(), "pi");
//! assert_eq!(doc.attr("version"), Some("1"));
//! assert_eq!(doc.child("code").unwrap().text(), "QkFTRTY0");
//! ```

pub mod dom;
pub mod error;
pub mod escape;
pub mod pull;
pub mod writer;

pub use dom::Element;
pub use error::{XmlError, XmlResult};
pub use pull::{PullParser, XmlEvent};
pub use writer::XmlWriter;
