//! The pull parser: the kXML-style event interface.
//!
//! [`PullParser`] walks a `&str` and yields [`XmlEvent`]s on demand. It keeps
//! an explicit element stack so it can verify well-formedness (every start
//! tag matched by the right end tag, exactly one root element, nothing after
//! the root).

use crate::error::{XmlError, XmlResult};
use crate::escape::unescape;

/// An attribute as it appears on a start tag, with its value already
/// entity-decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written.
    pub name: String,
    /// Decoded attribute value.
    pub value: String,
}

/// One parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<?xml version="1.0" ...?>` — at most one, at the start.
    Declaration {
        /// Raw content between `<?xml` and `?>`.
        content: String,
    },
    /// A start tag. `self_closing` is true for `<name/>`, in which case no
    /// matching [`XmlEvent::EndElement`] will be emitted.
    StartElement {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
        /// Whether the tag was written as `<name/>`.
        self_closing: bool,
    },
    /// An end tag (or the implicit end of a self-closing tag is *not*
    /// reported; see [`XmlEvent::StartElement::self_closing`]).
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data, entity-decoded. Whitespace-only runs between elements
    /// are still reported; the DOM layer filters them.
    Text(String),
    /// A `<![CDATA[...]]>` section, verbatim.
    CData(String),
    /// A `<!-- ... -->` comment, verbatim.
    Comment(String),
    /// A `<?target data?>` processing instruction (other than the XML
    /// declaration).
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data (possibly empty).
        data: String,
    },
    /// End of the document.
    Eof,
}

/// Pull parser over an in-memory document.
///
/// ```
/// use pdagent_xml::pull::{PullParser, XmlEvent};
/// let mut p = PullParser::new("<a x='1'>hi</a>");
/// match p.next_event().unwrap() {
///     XmlEvent::StartElement { name, attributes, .. } => {
///         assert_eq!(name, "a");
///         assert_eq!(attributes[0].value, "1");
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
pub struct PullParser<'a> {
    input: &'a str,
    pos: usize,
    stack: Vec<String>,
    seen_root: bool,
    done: bool,
}

impl<'a> PullParser<'a> {
    /// Create a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        PullParser { input, pos: 0, stack: Vec::new(), seen_root: false, done: false }
    }

    /// Create a parser over raw bytes, validating UTF-8 first.
    pub fn from_bytes(input: &'a [u8]) -> XmlResult<Self> {
        match std::str::from_utf8(input) {
            Ok(s) => Ok(Self::new(s)),
            Err(e) => Err(XmlError::InvalidUtf8 { offset: e.valid_up_to() }),
        }
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn syntax(&self, message: impl Into<String>) -> XmlError {
        XmlError::Syntax { offset: self.pos, message: message.into() }
    }

    /// Pull the next event. After [`XmlEvent::Eof`] every further call also
    /// returns `Eof`.
    pub fn next_event(&mut self) -> XmlResult<XmlEvent> {
        if self.done {
            return Ok(XmlEvent::Eof);
        }
        if self.pos >= self.input.len() {
            if !self.stack.is_empty() {
                return Err(XmlError::UnexpectedEof { context: "element content" });
            }
            if !self.seen_root {
                return Err(XmlError::NoRootElement);
            }
            self.done = true;
            return Ok(XmlEvent::Eof);
        }

        if self.rest().starts_with('<') {
            self.parse_markup()
        } else {
            self.parse_text()
        }
    }

    /// Iterate events until `Eof`, collecting them. Mostly useful in tests.
    pub fn collect_events(mut self) -> XmlResult<Vec<XmlEvent>> {
        let mut out = Vec::new();
        loop {
            let ev = self.next_event()?;
            let end = ev == XmlEvent::Eof;
            out.push(ev);
            if end {
                return Ok(out);
            }
        }
    }

    fn parse_text(&mut self) -> XmlResult<XmlEvent> {
        let start = self.pos;
        let end = self.rest().find('<').map(|p| self.pos + p).unwrap_or(self.input.len());
        let raw = &self.input[start..end];
        self.pos = end;
        if self.stack.is_empty() {
            // Outside the root element only whitespace is allowed.
            if raw.trim().is_empty() {
                return self.next_event();
            }
            if self.seen_root {
                return Err(XmlError::TrailingContent { offset: start });
            }
            return Err(XmlError::Syntax {
                offset: start,
                message: "character data before root element".into(),
            });
        }
        Ok(XmlEvent::Text(unescape(raw, start)?))
    }

    fn parse_markup(&mut self) -> XmlResult<XmlEvent> {
        debug_assert!(self.rest().starts_with('<'));
        let rest = self.rest();
        if rest.starts_with("<!--") {
            return self.parse_comment();
        }
        if rest.starts_with("<![CDATA[") {
            return self.parse_cdata();
        }
        if rest.starts_with("<!DOCTYPE") || rest.starts_with("<!doctype") {
            self.skip_doctype()?;
            return self.next_event();
        }
        if rest.starts_with("<?") {
            return self.parse_pi();
        }
        if rest.starts_with("</") {
            return self.parse_end_tag();
        }
        self.parse_start_tag()
    }

    fn parse_comment(&mut self) -> XmlResult<XmlEvent> {
        self.bump(4); // "<!--"
        let close = self
            .rest()
            .find("-->")
            .ok_or(XmlError::UnexpectedEof { context: "comment" })?;
        let content = self.rest()[..close].to_owned();
        self.bump(close + 3);
        Ok(XmlEvent::Comment(content))
    }

    fn parse_cdata(&mut self) -> XmlResult<XmlEvent> {
        if self.stack.is_empty() {
            return Err(self.syntax("CDATA section outside root element"));
        }
        self.bump(9); // "<![CDATA["
        let close = self
            .rest()
            .find("]]>")
            .ok_or(XmlError::UnexpectedEof { context: "CDATA section" })?;
        let content = self.rest()[..close].to_owned();
        self.bump(close + 3);
        Ok(XmlEvent::CData(content))
    }

    /// DOCTYPE declarations are skipped wholesale (kXML "relaxed" behaviour).
    /// Internal subsets in square brackets are balanced correctly.
    fn skip_doctype(&mut self) -> XmlResult<()> {
        let mut depth_sq = 0usize;
        let bytes = self.input.as_bytes();
        let mut i = self.pos;
        while i < bytes.len() {
            match bytes[i] {
                b'[' => depth_sq += 1,
                b']' => depth_sq = depth_sq.saturating_sub(1),
                b'>' if depth_sq == 0 => {
                    self.pos = i + 1;
                    return Ok(());
                }
                _ => {}
            }
            i += 1;
        }
        Err(XmlError::UnexpectedEof { context: "DOCTYPE declaration" })
    }

    fn parse_pi(&mut self) -> XmlResult<XmlEvent> {
        self.bump(2); // "<?"
        let close = self
            .rest()
            .find("?>")
            .ok_or(XmlError::UnexpectedEof { context: "processing instruction" })?;
        let content = &self.rest()[..close];
        let result = if content.starts_with("xml")
            && content[3..].starts_with(|c: char| c.is_whitespace())
        {
            XmlEvent::Declaration { content: content[3..].trim().to_owned() }
        } else {
            let (target, data) = match content.find(|c: char| c.is_whitespace()) {
                Some(p) => (&content[..p], content[p..].trim_start()),
                None => (content, ""),
            };
            if target.is_empty() {
                return Err(self.syntax("processing instruction with empty target"));
            }
            XmlEvent::ProcessingInstruction {
                target: target.to_owned(),
                data: data.to_owned(),
            }
        };
        self.bump(close + 2);
        Ok(result)
    }

    fn parse_end_tag(&mut self) -> XmlResult<XmlEvent> {
        let tag_offset = self.pos;
        self.bump(2); // "</"
        let name = self.read_name()?;
        self.skip_ws();
        if !self.rest().starts_with('>') {
            return Err(self.syntax("expected '>' to close end tag"));
        }
        self.bump(1);
        match self.stack.pop() {
            Some(open) if open == name => Ok(XmlEvent::EndElement { name }),
            Some(open) => Err(XmlError::MismatchedTag {
                offset: tag_offset,
                expected: open,
                found: name,
            }),
            None => Err(XmlError::Syntax {
                offset: tag_offset,
                message: format!("end tag </{name}> with no open element"),
            }),
        }
    }

    fn parse_start_tag(&mut self) -> XmlResult<XmlEvent> {
        let tag_offset = self.pos;
        self.bump(1); // "<"
        let name = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            let rest = self.rest();
            if rest.starts_with("/>") {
                self.bump(2);
                self.note_element(tag_offset)?;
                return Ok(XmlEvent::StartElement { name, attributes, self_closing: true });
            }
            if rest.starts_with('>') {
                self.bump(1);
                self.note_element(tag_offset)?;
                self.stack.push(name.clone());
                return Ok(XmlEvent::StartElement { name, attributes, self_closing: false });
            }
            if rest.is_empty() {
                return Err(XmlError::UnexpectedEof { context: "start tag" });
            }
            let attr = self.read_attribute()?;
            if attributes.iter().any(|a: &Attribute| a.name == attr.name) {
                return Err(self.syntax(format!("duplicate attribute {:?}", attr.name)));
            }
            attributes.push(attr);
        }
    }

    /// Well-formedness bookkeeping for a new element at the current depth.
    fn note_element(&mut self, offset: usize) -> XmlResult<()> {
        if self.stack.is_empty() {
            if self.seen_root {
                return Err(XmlError::TrailingContent { offset });
            }
            self.seen_root = true;
        }
        Ok(())
    }

    fn read_attribute(&mut self) -> XmlResult<Attribute> {
        let name = self.read_name()?;
        self.skip_ws();
        if !self.rest().starts_with('=') {
            return Err(self.syntax(format!("attribute {name:?} missing '='")));
        }
        self.bump(1);
        self.skip_ws();
        let quote = match self.rest().chars().next() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(self.syntax("attribute value must be quoted")),
        };
        self.bump(1);
        let value_start = self.pos;
        let close = self
            .rest()
            .find(quote)
            .ok_or(XmlError::UnexpectedEof { context: "attribute value" })?;
        let raw = &self.rest()[..close];
        if raw.contains('<') {
            return Err(self.syntax("'<' not allowed in attribute value"));
        }
        let value = unescape(raw, value_start)?;
        self.bump(close + 1);
        Ok(Attribute { name, value })
    }

    fn read_name(&mut self) -> XmlResult<String> {
        let rest = self.rest();
        let mut end = 0;
        for (i, ch) in rest.char_indices() {
            if i == 0 {
                if !is_name_start(ch) {
                    return Err(self.syntax("expected a name"));
                }
            } else if !is_name_char(ch) {
                end = i;
                break;
            }
            end = i + ch.len_utf8();
        }
        if end == 0 {
            return Err(self.syntax("expected a name"));
        }
        let name = rest[..end].to_owned();
        self.bump(end);
        Ok(name)
    }

    fn skip_ws(&mut self) {
        let n = self.rest().len() - self.rest().trim_start().len();
        self.bump(n);
    }
}

/// Is `ch` valid as the first character of an XML name?
pub fn is_name_start(ch: char) -> bool {
    ch.is_alphabetic() || ch == '_' || ch == ':'
}

/// Is `ch` valid as a subsequent character of an XML name?
pub fn is_name_char(ch: char) -> bool {
    ch.is_alphanumeric() || matches!(ch, '_' | ':' | '-' | '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(s: &str) -> Vec<XmlEvent> {
        PullParser::new(s).collect_events().unwrap()
    }

    fn err(s: &str) -> XmlError {
        PullParser::new(s).collect_events().unwrap_err()
    }

    #[test]
    fn minimal_document() {
        assert_eq!(
            events("<a/>"),
            vec![
                XmlEvent::StartElement {
                    name: "a".into(),
                    attributes: vec![],
                    self_closing: true
                },
                XmlEvent::Eof
            ]
        );
    }

    #[test]
    fn element_with_text() {
        assert_eq!(
            events("<a>hello</a>"),
            vec![
                XmlEvent::StartElement {
                    name: "a".into(),
                    attributes: vec![],
                    self_closing: false
                },
                XmlEvent::Text("hello".into()),
                XmlEvent::EndElement { name: "a".into() },
                XmlEvent::Eof
            ]
        );
    }

    #[test]
    fn attributes_single_and_double_quoted() {
        let evs = events(r#"<a x="1" y='two'/>"#);
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0], Attribute { name: "x".into(), value: "1".into() });
                assert_eq!(attributes[1], Attribute { name: "y".into(), value: "two".into() });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn attribute_value_entities_decoded() {
        let evs = events(r#"<a msg="a &amp; b &lt; c"/>"#);
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "a & b < c");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn text_entities_decoded() {
        let evs = events("<a>&lt;tag&gt; &amp; &#65;</a>");
        assert_eq!(evs[1], XmlEvent::Text("<tag> & A".into()));
    }

    #[test]
    fn nested_elements_and_depth() {
        let mut p = PullParser::new("<a><b><c/></b></a>");
        p.next_event().unwrap();
        assert_eq!(p.depth(), 1);
        p.next_event().unwrap();
        assert_eq!(p.depth(), 2);
        p.next_event().unwrap(); // <c/> does not push
        assert_eq!(p.depth(), 2);
    }

    #[test]
    fn declaration_and_pi() {
        let evs = events("<?xml version=\"1.0\"?><?target some data?><root/>");
        assert_eq!(evs[0], XmlEvent::Declaration { content: "version=\"1.0\"".into() });
        assert_eq!(
            evs[1],
            XmlEvent::ProcessingInstruction {
                target: "target".into(),
                data: "some data".into()
            }
        );
    }

    #[test]
    fn comments_inside_and_outside_root() {
        let evs = events("<!-- head --><a><!-- body --></a><!-- tail -->");
        assert_eq!(evs[0], XmlEvent::Comment(" head ".into()));
        assert_eq!(evs[2], XmlEvent::Comment(" body ".into()));
        assert_eq!(evs[4], XmlEvent::Comment(" tail ".into()));
    }

    #[test]
    fn cdata_is_verbatim() {
        let evs = events("<a><![CDATA[<not> &parsed;]]></a>");
        assert_eq!(evs[1], XmlEvent::CData("<not> &parsed;".into()));
    }

    #[test]
    fn doctype_is_skipped() {
        let evs = events("<!DOCTYPE pi [ <!ELEMENT pi ANY> ]><pi/>");
        assert!(matches!(evs[0], XmlEvent::StartElement { .. }));
    }

    #[test]
    fn mismatched_tag_is_error() {
        assert!(matches!(err("<a><b></a></b>"), XmlError::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_element_is_error() {
        assert!(matches!(err("<a><b></b>"), XmlError::UnexpectedEof { .. }));
    }

    #[test]
    fn two_roots_is_error() {
        assert!(matches!(err("<a/><b/>"), XmlError::TrailingContent { .. }));
    }

    #[test]
    fn text_after_root_is_error() {
        assert!(matches!(err("<a/>junk"), XmlError::TrailingContent { .. }));
    }

    #[test]
    fn empty_document_is_error() {
        assert_eq!(err(""), XmlError::NoRootElement);
        assert_eq!(err("   \n  "), XmlError::NoRootElement);
    }

    #[test]
    fn stray_end_tag_is_error() {
        assert!(matches!(err("</a>"), XmlError::Syntax { .. }));
    }

    #[test]
    fn duplicate_attribute_is_error() {
        assert!(matches!(err(r#"<a x="1" x="2"/>"#), XmlError::Syntax { .. }));
    }

    #[test]
    fn unquoted_attribute_is_error() {
        assert!(matches!(err("<a x=1/>"), XmlError::Syntax { .. }));
    }

    #[test]
    fn lt_in_attribute_is_error() {
        assert!(matches!(err(r#"<a x="a<b"/>"#), XmlError::Syntax { .. }));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let bytes = b"<a>\xff</a>";
        assert!(matches!(
            PullParser::from_bytes(bytes),
            Err(XmlError::InvalidUtf8 { offset: 3 })
        ));
    }

    #[test]
    fn whitespace_between_elements_reported_inside_root() {
        let evs = events("<a>\n  <b/>\n</a>");
        assert!(matches!(&evs[1], XmlEvent::Text(t) if t.trim().is_empty()));
    }

    #[test]
    fn names_with_dashes_dots_colons() {
        let evs = events("<ns:elem-name.x/>");
        assert!(
            matches!(&evs[0], XmlEvent::StartElement { name, .. } if name == "ns:elem-name.x")
        );
    }

    #[test]
    fn whitespace_tolerant_tags() {
        let evs = events("<a  x = \"1\"  />");
        match &evs[0] {
            XmlEvent::StartElement { name, attributes, self_closing } => {
                assert_eq!(name, "a");
                assert_eq!(attributes[0].value, "1");
                assert!(self_closing);
            }
            other => panic!("unexpected {other:?}"),
        }
        let evs = events("<b ></b >");
        assert!(matches!(&evs[0], XmlEvent::StartElement { name, .. } if name == "b"));
        assert!(matches!(&evs[1], XmlEvent::EndElement { name } if name == "b"));
    }

    #[test]
    fn eof_is_sticky() {
        let mut p = PullParser::new("<a/>");
        p.next_event().unwrap();
        assert_eq!(p.next_event().unwrap(), XmlEvent::Eof);
        assert_eq!(p.next_event().unwrap(), XmlEvent::Eof);
    }

    #[test]
    fn multibyte_text_offsets() {
        let evs = events("<a>中文テキスト</a>");
        assert_eq!(evs[1], XmlEvent::Text("中文テキスト".into()));
    }
}
