//! Error type shared by the parser, DOM and writer layers.

use std::fmt;

/// Result alias used across the crate.
pub type XmlResult<T> = Result<T, XmlError>;

/// An XML processing error.
///
/// Parse errors carry the byte offset at which the problem was detected so
/// callers (the gateway's `XML Writer` stage in the paper's terminology) can
/// report where a malformed Packed Information document broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was in the middle of reading.
        context: &'static str,
    },
    /// A syntactic violation at a byte offset.
    Syntax {
        /// Byte offset into the input where the error was detected.
        offset: usize,
        /// Human-readable description of the violation.
        message: String,
    },
    /// End tag did not match the open element.
    MismatchedTag {
        /// Byte offset of the offending end tag.
        offset: usize,
        /// Name of the element that was open.
        expected: String,
        /// Name found in the end tag.
        found: String,
    },
    /// A `&name;` entity reference that is not one of the five predefined
    /// entities and not a character reference.
    UnknownEntity {
        /// Byte offset of the `&`.
        offset: usize,
        /// The entity name as written (without `&`/`;`).
        name: String,
    },
    /// The document contained no root element.
    NoRootElement,
    /// Content found after the close of the root element.
    TrailingContent {
        /// Byte offset of the trailing content.
        offset: usize,
    },
    /// A name (element/attribute) contains a forbidden character.
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// Input is not valid UTF-8.
    InvalidUtf8 {
        /// Byte offset of the first invalid byte.
        offset: usize,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            XmlError::Syntax { offset, message } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            XmlError::MismatchedTag { offset, expected, found } => write!(
                f,
                "mismatched end tag at byte {offset}: expected </{expected}>, found </{found}>"
            ),
            XmlError::UnknownEntity { offset, name } => {
                write!(f, "unknown entity &{name}; at byte {offset}")
            }
            XmlError::NoRootElement => write!(f, "document has no root element"),
            XmlError::TrailingContent { offset } => {
                write!(f, "content after root element at byte {offset}")
            }
            XmlError::InvalidName { name } => write!(f, "invalid XML name: {name:?}"),
            XmlError::InvalidUtf8 { offset } => {
                write!(f, "input is not valid UTF-8 at byte {offset}")
            }
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = XmlError::Syntax { offset: 12, message: "expected '>'".into() };
        assert!(e.to_string().contains("byte 12"));
        assert!(e.to_string().contains("expected '>'"));

        let e = XmlError::MismatchedTag {
            offset: 3,
            expected: "pi".into(),
            found: "code".into(),
        };
        let s = e.to_string();
        assert!(s.contains("</pi>") && s.contains("</code>"));

        let e = XmlError::UnknownEntity { offset: 0, name: "nbsp".into() };
        assert!(e.to_string().contains("&nbsp;"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(XmlError::NoRootElement, XmlError::NoRootElement);
        assert_ne!(
            XmlError::NoRootElement,
            XmlError::TrailingContent { offset: 0 }
        );
    }
}
