//! Escaping and unescaping of character data and attribute values.
//!
//! Only the five predefined XML entities and numeric character references are
//! supported, which matches kXML's default entity table.

use crate::error::{XmlError, XmlResult};

/// Escape a string for use as element character data.
///
/// `<`, `>` and `&` are replaced by entity references. Quotes are left alone
/// (they are only special inside attribute values).
pub fn escape_text(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for ch in input.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escape a string for use inside a double-quoted attribute value.
///
/// In addition to the text escapes, `"` becomes `&quot;` and the line-ending
/// characters become character references so they survive attribute-value
/// normalization on re-parse.
pub fn escape_attr(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for ch in input.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\r' => out.push_str("&#13;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Decode entity and character references in `input`.
///
/// `offset_base` is the byte offset of `input` within the whole document and
/// is only used to produce accurate error positions.
pub fn unescape(input: &str, offset_base: usize) -> XmlResult<String> {
    if !input.contains('&') {
        return Ok(input.to_owned());
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Advance over one UTF-8 code point.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        let semi = input[i..]
            .find(';')
            .map(|p| i + p)
            .ok_or(XmlError::UnexpectedEof { context: "entity reference" })?;
        let name = &input[i + 1..semi];
        let decoded = decode_entity(name, offset_base + i)?;
        out.push(decoded);
        i = semi + 1;
    }
    Ok(out)
}

/// Decode a single entity name (the part between `&` and `;`).
fn decode_entity(name: &str, offset: usize) -> XmlResult<char> {
    match name {
        "lt" => Ok('<'),
        "gt" => Ok('>'),
        "amp" => Ok('&'),
        "apos" => Ok('\''),
        "quot" => Ok('"'),
        _ => {
            if let Some(rest) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                let code = u32::from_str_radix(rest, 16).map_err(|_| XmlError::UnknownEntity {
                    offset,
                    name: name.to_owned(),
                })?;
                char::from_u32(code).ok_or_else(|| XmlError::UnknownEntity {
                    offset,
                    name: name.to_owned(),
                })
            } else if let Some(rest) = name.strip_prefix('#') {
                let code = rest.parse::<u32>().map_err(|_| XmlError::UnknownEntity {
                    offset,
                    name: name.to_owned(),
                })?;
                char::from_u32(code).ok_or_else(|| XmlError::UnknownEntity {
                    offset,
                    name: name.to_owned(),
                })
            } else {
                Err(XmlError::UnknownEntity { offset, name: name.to_owned() })
            }
        }
    }
}

/// Length in bytes of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_basic() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
        assert_eq!(escape_text("plain"), "plain");
        assert_eq!(escape_text("\"quoted\""), "\"quoted\"");
    }

    #[test]
    fn escape_attr_quotes_and_whitespace() {
        assert_eq!(escape_attr("a\"b"), "a&quot;b");
        assert_eq!(escape_attr("a\nb\tc"), "a&#10;b&#9;c");
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(unescape("&lt;&gt;&amp;&apos;&quot;", 0).unwrap(), "<>&'\"");
    }

    #[test]
    fn unescape_numeric_decimal_and_hex() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", 0).unwrap(), "ABc");
        assert_eq!(unescape("&#x4E2D;", 0).unwrap(), "中");
    }

    #[test]
    fn unescape_passthrough_multibyte() {
        assert_eq!(unescape("héllo wörld 中文", 0).unwrap(), "héllo wörld 中文");
    }

    #[test]
    fn unescape_unknown_entity_errors() {
        let err = unescape("x&nbsp;y", 10).unwrap_err();
        assert_eq!(err, XmlError::UnknownEntity { offset: 11, name: "nbsp".into() });
    }

    #[test]
    fn unescape_unterminated_entity_errors() {
        let err = unescape("x&lt", 0).unwrap_err();
        assert!(matches!(err, XmlError::UnexpectedEof { .. }));
    }

    #[test]
    fn unescape_invalid_codepoint_errors() {
        // Surrogate code points are not valid chars.
        assert!(unescape("&#xD800;", 0).is_err());
        assert!(unescape("&#99999999;", 0).is_err());
    }

    #[test]
    fn roundtrip_text() {
        for s in ["", "a<b>&c", "x & y < z", "中文 & <tags>"] {
            assert_eq!(unescape(&escape_text(s), 0).unwrap(), s);
        }
    }

    #[test]
    fn roundtrip_attr() {
        for s in ["", "a\"b'c", "line\nbreak\ttab", "<&>\""] {
            assert_eq!(unescape(&escape_attr(s), 0).unwrap(), s);
        }
    }
}
