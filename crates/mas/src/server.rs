//! [`MasNode`]: the mobile-agent server running at each network site.

use std::collections::HashMap;

use pdagent_net::prelude::*;
use pdagent_vm::{run, Host, Outcome, Value};

use crate::agent::{AgentId, AgentRecord, MobileAgent};
use crate::service::Service;
use crate::{KIND_ACK, KIND_COMPLETE, KIND_CONTROL, KIND_CONTROL_RESP, KIND_TRANSFER};

/// Execution-time model for the site CPU: running an agent that executes
/// `n` VM instructions occupies the site for `base + n * per_instruction`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuModel {
    /// Fixed per-visit overhead (agent instantiation, class resolution —
    /// what Aglets spends creating the aglet from its classes).
    pub base: SimDuration,
    /// Nanoseconds per VM instruction.
    pub per_instruction_ns: u64,
}

impl Default for CpuModel {
    fn default() -> Self {
        // A 2004 desktop-class site: 5 ms instantiation + 2 µs/instruction.
        CpuModel { base: SimDuration::from_millis(5), per_instruction_ns: 2_000 }
    }
}

impl CpuModel {
    /// Execution time for `instructions` VM instructions.
    pub fn exec_time(&self, instructions: u64) -> SimDuration {
        self.base + SimDuration::from_micros(instructions * self.per_instruction_ns / 1_000)
    }
}

/// Maps site names to simulator node ids. Each MAS holds a copy (topologies
/// are static within a scenario).
#[derive(Debug, Clone, Default)]
pub struct SiteDirectory {
    sites: HashMap<String, NodeId>,
}

impl SiteDirectory {
    /// Empty directory.
    pub fn new() -> SiteDirectory {
        SiteDirectory::default()
    }

    /// Register a site.
    pub fn insert(&mut self, name: impl Into<String>, node: NodeId) {
        self.sites.insert(name.into(), node);
    }

    /// Resolve a site name.
    pub fn resolve(&self, name: &str) -> Option<NodeId> {
        self.sites.get(name).copied()
    }

    /// All site names (sorted, deterministic).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.sites.keys().cloned().collect();
        v.sort();
        v
    }
}

/// Control operations (paper §3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlOp {
    /// Query the agent's status.
    Status,
    /// Pull the agent back to the requester immediately.
    Retract,
    /// Destroy the agent.
    Dispose,
    /// Fork a copy that continues independently.
    Clone,
}

impl ControlOp {
    fn to_byte(self) -> u8 {
        match self {
            ControlOp::Status => 1,
            ControlOp::Retract => 2,
            ControlOp::Dispose => 3,
            ControlOp::Clone => 4,
        }
    }

    fn from_byte(b: u8) -> Option<ControlOp> {
        match b {
            1 => Some(ControlOp::Status),
            2 => Some(ControlOp::Retract),
            3 => Some(ControlOp::Dispose),
            4 => Some(ControlOp::Clone),
            _ => None,
        }
    }
}

/// Encode a control request message body.
pub fn encode_control(op: ControlOp, id: &AgentId) -> Vec<u8> {
    let mut out = vec![op.to_byte()];
    out.extend_from_slice(id.0.as_bytes());
    out
}

/// Decode a control request message body.
pub fn decode_control(body: &[u8]) -> Option<(ControlOp, AgentId)> {
    let op = ControlOp::from_byte(*body.first()?)?;
    let id = std::str::from_utf8(&body[1..]).ok()?;
    Some((op, AgentId(id.to_owned())))
}

/// Encode a control response: `[op][found][id-len varint][id][payload…]`.
/// The echoed agent id lets a gateway correlate responses when it has
/// several management requests outstanding.
pub fn encode_control_resp(op: ControlOp, id: &AgentId, found: bool, payload: &[u8]) -> Vec<u8> {
    let mut out = vec![op.to_byte(), found as u8];
    pdagent_codec::varint::write_usize(&mut out, id.0.len());
    out.extend_from_slice(id.0.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode a control response.
pub fn decode_control_resp(body: &[u8]) -> Option<(ControlOp, AgentId, bool, &[u8])> {
    let op = ControlOp::from_byte(*body.first()?)?;
    let found = *body.get(1)? != 0;
    let mut pos = 2;
    let len = pdagent_codec::varint::read_usize(body, &mut pos).ok()?;
    let end = pos.checked_add(len)?;
    if end > body.len() {
        return None;
    }
    let id = AgentId(std::str::from_utf8(&body[pos..end]).ok()?.to_owned());
    Some((op, id, found, &body[end..]))
}

#[derive(Debug)]
enum Slot {
    /// Executing on the site CPU; departs when the timer fires.
    Executing,
    /// Sent onward; retained until the receiver acks. `wire` caches the
    /// serialized transfer frame: the agent is frozen while awaiting an ack,
    /// so retries clone the same buffer instead of re-serializing (and the
    /// cached frame keeps its observability context across retries).
    AwaitingAck { attempts: u32, wire: Message },
}

/// Observability state for one resident agent, kept beside (not inside) the
/// agent so the wire format is untouched: the journey context from the
/// arriving transfer, the open `itinerary.hop[i]` span, and the open
/// `mas.exec` span while the site CPU is busy.
#[derive(Debug, Clone, Copy, Default)]
struct AgentObs {
    jctx: ObsContext,
    hop: u32,
    exec: u32,
}

/// VM host adapter exposing the site's services to a visiting agent.
struct SiteHost<'a> {
    site: &'a str,
    services: &'a mut HashMap<String, Box<dyn Service>>,
    params: &'a [(String, Value)],
    emitted: Vec<(String, Value)>,
    abort_requested: bool,
    hops_done: usize,
    hops_total: usize,
}

impl Host for SiteHost<'_> {
    fn invoke(&mut self, service: &str, op: &str, args: &[Value]) -> Result<Value, String> {
        if service == "agent" {
            // Reflective operations on the agent itself.
            return match op {
                "abort" => {
                    self.abort_requested = true;
                    Ok(Value::Bool(true))
                }
                "hops_done" => Ok(Value::Int(self.hops_done as i64)),
                "hops_total" => Ok(Value::Int(self.hops_total as i64)),
                other => Err(format!("agent: unknown operation {other:?}")),
            };
        }
        match self.services.get_mut(service) {
            Some(svc) => svc.invoke(op, args),
            None => Err(format!("site {} has no service {service:?}", self.site)),
        }
    }

    fn param(&self, name: &str) -> Option<Value> {
        self.params.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone())
    }

    fn emit(&mut self, key: &str, value: Value) {
        self.emitted.push((key.to_owned(), value));
    }

    fn site_name(&self) -> &str {
        self.site
    }
}

/// The mobile-agent server node.
pub struct MasNode {
    site_name: String,
    directory: SiteDirectory,
    services: HashMap<String, Box<dyn Service>>,
    cpu: CpuModel,
    agents: HashMap<AgentId, (MobileAgent, Slot)>,
    obs: HashMap<AgentId, AgentObs>,
    tags: HashMap<u64, (AgentId, TagKind)>,
    next_tag: u64,
    clones: u64,
    /// How long to wait for a transfer ack before retrying.
    pub ack_timeout: SimDuration,
    /// Transfer attempts (including the first) before skipping the site.
    pub max_transfer_attempts: u32,
    /// Human-readable event log (tests and demos inspect this).
    pub log: Vec<String>,
    /// Delta-encoded `/metrics` + `/healthz` server: interned series, dirty
    /// epochs, pooled render buffer.
    telemetry: pdagent_net::telemetry::TelemetryServer,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TagKind {
    Depart,
    AckTimeout,
}

impl MasNode {
    /// A MAS for `site_name` with a directory of peer sites.
    pub fn new(site_name: impl Into<String>, directory: SiteDirectory) -> MasNode {
        MasNode {
            site_name: site_name.into(),
            directory,
            services: HashMap::new(),
            cpu: CpuModel::default(),
            agents: HashMap::new(),
            obs: HashMap::new(),
            tags: HashMap::new(),
            next_tag: 0,
            clones: 0,
            ack_timeout: SimDuration::from_millis(500),
            max_transfer_attempts: 3,
            log: Vec::new(),
            telemetry: pdagent_net::telemetry::TelemetryServer::new(),
        }
    }

    /// Override the CPU model (builder style).
    pub fn with_cpu(mut self, cpu: CpuModel) -> MasNode {
        self.cpu = cpu;
        self
    }

    /// Register a service agent under `name`.
    pub fn register_service(&mut self, name: impl Into<String>, service: Box<dyn Service>) {
        self.services.insert(name.into(), service);
    }

    /// Site name.
    pub fn site_name(&self) -> &str {
        &self.site_name
    }

    /// Ids of agents currently present (executing or awaiting ack).
    pub fn resident_agents(&self) -> Vec<AgentId> {
        let mut v: Vec<AgentId> = self.agents.keys().cloned().collect();
        v.sort();
        v
    }

    fn fresh_tag(&mut self, id: &AgentId, kind: TagKind) -> u64 {
        self.next_tag += 1;
        self.tags.insert(self.next_tag, (id.clone(), kind));
        self.next_tag
    }

    /// Execute an arriving agent on this site and schedule its departure.
    fn execute_and_schedule(&mut self, ctx: &mut Ctx<'_>, mut agent: MobileAgent) {
        let should_run = agent.next_site() == Some(self.site_name.as_str());
        if should_run {
            let mut host = SiteHost {
                site: &self.site_name,
                services: &mut self.services,
                params: &agent.params,
                emitted: Vec::new(),
                abort_requested: false,
                hops_done: agent.next_hop,
                hops_total: agent.itinerary.len(),
            };
            let before = agent.state.instructions;
            let outcome = run(&agent.program, &mut agent.state, &mut host, agent.fuel_per_hop);
            let executed = agent.state.instructions - before;
            let emitted = std::mem::take(&mut host.emitted);
            let abort = host.abort_requested;
            for (key, value) in emitted {
                agent.push_result(&self.site_name, &key, value);
            }
            match outcome {
                Outcome::Completed => {
                    agent.next_hop += 1;
                    if abort {
                        self.log.push(format!("{}: agent {} aborted itinerary", self.site_name, agent.id));
                        agent.next_hop = agent.itinerary.len();
                    }
                }
                Outcome::Failed(msg) => {
                    agent.push_result(&self.site_name, "error", Value::Str(msg.clone()));
                    self.log.push(format!("{}: agent {} failed: {msg}", self.site_name, agent.id));
                    agent.next_hop = agent.itinerary.len();
                }
                Outcome::OutOfFuel => {
                    agent.push_result(
                        &self.site_name,
                        "error",
                        Value::Str("out of fuel".into()),
                    );
                    self.log.push(format!("{}: agent {} out of fuel", self.site_name, agent.id));
                    agent.next_hop = agent.itinerary.len();
                }
                Outcome::Trapped(e) => {
                    agent.push_result(&self.site_name, "error", Value::Str(e.to_string()));
                    self.log.push(format!("{}: agent {} trapped: {e}", self.site_name, agent.id));
                    agent.next_hop = agent.itinerary.len();
                }
            }
            ctx.metrics().bump("mas.agents_executed", 1.0);
            ctx.metrics().bump("mas.instructions", executed as f64);
            let delay = self.cpu.exec_time(executed);
            // `mas.exec` covers the modeled CPU occupancy: now → departure.
            if let Some(o) = self.obs.get_mut(&agent.id) {
                let (trace, hop) = (o.jctx.trace, o.hop);
                o.exec = ctx.span_begin(trace, hop, "mas.exec");
            }
            let tag = self.fresh_tag(&agent.id, TagKind::Depart);
            ctx.set_timer(delay, tag);
            self.agents.insert(agent.id.clone(), (agent, Slot::Executing));
        } else {
            // Relay without executing (mis-routed or already-finished agent).
            let tag = self.fresh_tag(&agent.id, TagKind::Depart);
            ctx.set_timer(SimDuration::from_millis(1), tag);
            self.agents.insert(agent.id.clone(), (agent, Slot::Executing));
        }
    }

    /// Send the agent onward (next site or origin). Called at departure time
    /// and on ack-timeout retries.
    fn depart(&mut self, ctx: &mut Ctx<'_>, id: &AgentId, attempts: u32) {
        let Some((agent, slot)) = self.agents.remove(id) else { return };
        let jctx = match self.obs.get_mut(id) {
            Some(o) => {
                // CPU occupancy ends at departure time (idempotent on ack
                // retries, where the exec span is long closed).
                ctx.span_end(o.exec);
                o.jctx
            }
            None => ObsContext::NONE,
        };
        if agent.done() {
            // Return to the origin gateway.
            let origin = agent.origin as NodeId;
            let body = agent.to_bytes();
            ctx.send(origin, Message::new(KIND_COMPLETE, body).traced(jctx));
            if let Some(o) = self.obs.remove(id) {
                ctx.span_end(o.hop);
            }
            ctx.metrics().set_gauge("mas.resident_agents", self.agents.len() as f64);
            self.log.push(format!("{}: agent {} returned to origin", self.site_name, id));
            // Origin delivery runs over the (reliable, wired) backbone; no ack.
            return;
        }
        let next_name = agent.next_site().expect("not done").to_owned();
        match self.directory.resolve(&next_name) {
            Some(next_node) => {
                let wire = match slot {
                    Slot::AwaitingAck { wire, .. } => wire,
                    _ => Message::new(KIND_TRANSFER, agent.to_bytes()).traced(jctx),
                };
                let sent = ctx.send(next_node, wire.clone());
                let tag = self.fresh_tag(id, TagKind::AckTimeout);
                ctx.set_timer(self.ack_timeout, tag);
                self.agents.insert(id.clone(), (agent, Slot::AwaitingAck { attempts, wire }));
                if !sent {
                    ctx.metrics().bump("mas.transfer_send_failed", 1.0);
                }
            }
            None => {
                // Unknown site: skip it.
                self.skip_current_hop(ctx, agent, &next_name);
            }
        }
    }

    /// Close any open spans for an agent leaving this site abnormally
    /// (retract/dispose) and drop its side-table entry. Returns the journey
    /// context for stamping a final message.
    fn close_agent_obs(&mut self, ctx: &mut Ctx<'_>, id: &AgentId) -> ObsContext {
        match self.obs.remove(id) {
            Some(o) => {
                ctx.span_end(o.exec);
                ctx.span_end(o.hop);
                ctx.metrics().set_gauge("mas.resident_agents", self.agents.len() as f64);
                o.jctx
            }
            None => ObsContext::NONE,
        }
    }

    fn skip_current_hop(&mut self, ctx: &mut Ctx<'_>, mut agent: MobileAgent, site: &str) {
        agent.push_result(
            &self.site_name,
            "unreachable",
            Value::Str(site.to_owned()),
        );
        agent.next_hop += 1;
        ctx.metrics().bump("mas.hops_skipped", 1.0);
        self.log.push(format!("{}: skipping unreachable site {site} for agent {}", self.site_name, agent.id));
        let id = agent.id.clone();
        self.agents.insert(id.clone(), (agent, Slot::Executing));
        self.depart(ctx, &id, 1);
    }

    fn handle_control(&mut self, ctx: &mut Ctx<'_>, from: NodeId, body: &[u8]) {
        let Some((op, id)) = decode_control(body) else {
            return;
        };
        let resp = |found: bool, payload: Vec<u8>| {
            Message::new(KIND_CONTROL_RESP, encode_control_resp(op, &id, found, &payload))
        };
        match op {
            ControlOp::Status => {
                let payload = self.agents.get(&id).map(|(agent, _)| {
                    AgentRecord {
                        id: id.clone(),
                        site: self.site_name.clone(),
                        hops_done: agent.next_hop,
                        hops_total: agent.itinerary.len(),
                        instructions: agent.state.instructions,
                    }
                    .to_bytes()
                });
                ctx.send(from, resp(payload.is_some(), payload.unwrap_or_default()));
            }
            ControlOp::Retract => match self.agents.remove(&id) {
                Some((mut agent, _)) => {
                    agent.push_result(&self.site_name, "retracted", Value::Bool(true));
                    agent.next_hop = agent.itinerary.len();
                    let jctx = self.close_agent_obs(ctx, &id);
                    ctx.send(from, Message::new(KIND_COMPLETE, agent.to_bytes()).traced(jctx));
                    ctx.send(from, resp(true, Vec::new()));
                    self.log.push(format!("{}: agent {} retracted", self.site_name, id));
                }
                None => {
                    ctx.send(from, resp(false, Vec::new()));
                }
            },
            ControlOp::Dispose => {
                let found = self.agents.remove(&id).is_some();
                if found {
                    self.close_agent_obs(ctx, &id);
                    self.log.push(format!("{}: agent {} disposed", self.site_name, id));
                }
                ctx.send(from, resp(found, Vec::new()));
            }
            ControlOp::Clone => match self.agents.get(&id) {
                Some((agent, _)) => {
                    self.clones += 1;
                    let mut copy = agent.clone();
                    copy.id = AgentId(format!("{}-clone{}", id.0, self.clones));
                    let payload = copy.id.0.clone().into_bytes();
                    self.log.push(format!("{}: agent {} cloned as {}", self.site_name, id, copy.id));
                    let copy_id = copy.id.clone();
                    // The clone continues the same logical journey: it
                    // inherits the original's trace context, and the sites it
                    // visits open their own hop spans under the same root.
                    let jctx =
                        self.obs.get(&id).map(|o| o.jctx).unwrap_or(ObsContext::NONE);
                    self.obs
                        .insert(copy_id.clone(), AgentObs { jctx, hop: 0, exec: 0 });
                    self.agents.insert(copy_id.clone(), (copy, Slot::Executing));
                    self.depart(ctx, &copy_id, 1);
                    ctx.send(from, resp(true, payload));
                }
                None => {
                    ctx.send(from, resp(false, Vec::new()));
                }
            },
        }
    }
}

impl Node for MasNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        match msg.kind.as_str() {
            KIND_TRANSFER => {
                let Ok(agent) = MobileAgent::from_bytes(&msg.body) else {
                    ctx.metrics().bump("mas.malformed_transfers", 1.0);
                    return;
                };
                // Ack receipt so the sender releases its copy.
                ctx.send(from, Message::new(KIND_ACK, agent.id.0.clone().into_bytes()));
                // Duplicate transfer (our ack was lost)? Drop the duplicate.
                if self.agents.contains_key(&agent.id) {
                    ctx.metrics().bump("mas.duplicate_transfers", 1.0);
                    return;
                }
                // One `itinerary.hop[i]` span per residence at this site,
                // parented to the journey root the transfer message carries.
                let hop = ctx.span_begin_indexed(
                    msg.obs.trace,
                    msg.obs.span,
                    "itinerary.hop",
                    Some(agent.next_hop as u32),
                );
                self.obs
                    .insert(agent.id.clone(), AgentObs { jctx: msg.obs, hop, exec: 0 });
                self.log.push(format!("{}: agent {} arrived", self.site_name, agent.id));
                self.execute_and_schedule(ctx, agent);
                ctx.metrics().set_gauge("mas.resident_agents", self.agents.len() as f64);
            }
            KIND_ACK => {
                let Ok(id) = std::str::from_utf8(&msg.body) else { return };
                let id = AgentId(id.to_owned());
                if matches!(self.agents.get(&id), Some((_, Slot::AwaitingAck { .. }))) {
                    self.agents.remove(&id);
                    // The next site has the agent: this residence is over.
                    if let Some(o) = self.obs.remove(&id) {
                        ctx.span_end(o.hop);
                    }
                    ctx.metrics().set_gauge("mas.resident_agents", self.agents.len() as f64);
                }
            }
            KIND_CONTROL => self.handle_control(ctx, from, &msg.body),
            _ => {
                // Operational telemetry: MAS sites answer GET /metrics and
                // GET /healthz like gateways do, so monitors can scrape the
                // whole execution plane over the modeled links.
                if let Some(req) = pdagent_net::http::HttpRequest::from_message(&msg) {
                    let MasNode { telemetry, site_name, .. } = self;
                    telemetry.serve(ctx, from, &req, site_name);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let Some((id, kind)) = self.tags.remove(&tag) else { return };
        match kind {
            TagKind::Depart => {
                if matches!(self.agents.get(&id), Some((_, Slot::Executing))) {
                    self.depart(ctx, &id, 1);
                }
            }
            TagKind::AckTimeout => {
                let Some((_, Slot::AwaitingAck { attempts, .. })) = self.agents.get(&id)
                else {
                    return; // acked in the meantime
                };
                let attempts = *attempts;
                if attempts >= self.max_transfer_attempts {
                    // Give up on this site: skip the hop.
                    let (agent, _) = self.agents.remove(&id).expect("checked above");
                    let site = agent.next_site().unwrap_or("?").to_owned();
                    self.skip_current_hop(ctx, agent, &site);
                } else {
                    ctx.metrics().bump("mas.transfer_retries", 1.0);
                    self.depart(ctx, &id, attempts + 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Itinerary;
    use crate::service::{EchoService, KvService};
    use pdagent_net::link::LinkSpec;
    use pdagent_net::sim::Simulator;
    use pdagent_vm::assemble;

    /// A stub gateway that records completed agents.
    #[derive(Default)]
    struct StubOrigin {
        completed: Vec<MobileAgent>,
    }
    impl Node for StubOrigin {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
            if msg.kind == KIND_COMPLETE {
                self.completed.push(MobileAgent::from_bytes(&msg.body).unwrap());
            }
        }
    }

    fn tour_program() -> pdagent_vm::Program {
        assemble(
            r#"
            .name tour
            site
            invoke "echo" "visit" 1
            emit "visited"
            halt
        "#,
        )
        .unwrap()
    }

    /// Build origin + N MAS sites, fully meshed with LAN links.
    fn build(n_sites: usize, seed: u64) -> (Simulator, NodeId, Vec<NodeId>, SiteDirectory) {
        let mut sim = Simulator::new(seed);
        let origin = sim.add_node(Box::<StubOrigin>::default());
        let mut directory = SiteDirectory::new();
        // Pre-assign ids: origin=0, sites 1..=n.
        for i in 0..n_sites {
            directory.insert(format!("site-{i}"), origin + 1 + i);
        }
        let mut sites = Vec::new();
        for i in 0..n_sites {
            let mut mas = MasNode::new(format!("site-{i}"), directory.clone());
            mas.register_service("echo", Box::new(EchoService));
            mas.register_service("kv", Box::new(KvService::new()));
            let id = sim.add_node(Box::new(mas));
            sites.push(id);
        }
        for (i, &a) in sites.iter().enumerate() {
            sim.connect(origin, a, LinkSpec::lan());
            for &b in &sites[i + 1..] {
                sim.connect(a, b, LinkSpec::lan());
            }
        }
        (sim, origin, sites, directory)
    }

    fn launch(
        sim: &mut Simulator,
        origin: NodeId,
        first_site: NodeId,
        itinerary: Itinerary,
    ) -> AgentId {
        let id = AgentId("ag-1".into());
        let agent = MobileAgent::new(
            id.clone(),
            tour_program(),
            vec![("user".into(), Value::Str("alice".into()))],
            itinerary,
            origin as u64,
        );
        sim.inject(
            first_site,
            origin,
            Message::new(KIND_TRANSFER, agent.to_bytes()),
            SimDuration::ZERO,
        );
        id
    }

    #[test]
    fn agent_tours_all_sites_and_returns() {
        let (mut sim, origin, sites, _) = build(3, 1);
        launch(&mut sim, origin, sites[0], Itinerary::new(["site-0", "site-1", "site-2"]));
        sim.run_until_idle();
        let done = &sim.node_ref::<StubOrigin>(origin).unwrap().completed;
        assert_eq!(done.len(), 1);
        let agent = &done[0];
        assert!(agent.done());
        let visited: Vec<&str> = agent
            .results
            .iter()
            .filter(|r| r.key == "visited")
            .map(|r| r.site.as_str())
            .collect();
        assert_eq!(visited, vec!["site-0", "site-1", "site-2"]);
        // Each visit echoes "visit(<site>)".
        assert_eq!(
            agent.results[0].value,
            Value::Str("visit(site-0)".into())
        );
    }

    #[test]
    fn execution_takes_simulated_cpu_time() {
        let (mut sim, origin, sites, _) = build(1, 2);
        launch(&mut sim, origin, sites[0], Itinerary::new(["site-0"]));
        let end = sim.run_until_idle();
        // At least the CPU base (5 ms) plus two LAN hops.
        assert!(end.as_secs_f64() > 0.005);
        assert!(sim.metrics(sites[0]).counter("mas.instructions") > 0.0);
    }

    #[test]
    fn down_site_is_skipped_with_note() {
        let (mut sim, origin, sites, _) = build(3, 3);
        // Take down site-1's links entirely.
        sim.set_link_up(sites[0], sites[1], false);
        sim.set_link_up(sites[1], sites[2], false);
        sim.set_link_up(origin, sites[1], false);
        launch(&mut sim, origin, sites[0], Itinerary::new(["site-0", "site-1", "site-2"]));
        sim.run_until_idle();
        let done = &sim.node_ref::<StubOrigin>(origin).unwrap().completed;
        assert_eq!(done.len(), 1);
        let agent = &done[0];
        // site-1 skipped, note recorded; site-2 still visited.
        assert!(agent
            .results
            .iter()
            .any(|r| r.key == "unreachable" && r.value == Value::Str("site-1".into())));
        assert!(agent.results.iter().any(|r| r.key == "visited" && r.site == "site-2"));
        assert!(sim.metrics(sites[0]).counter("mas.hops_skipped") >= 1.0);
    }

    #[test]
    fn unknown_site_in_itinerary_is_skipped() {
        let (mut sim, origin, sites, _) = build(2, 4);
        launch(&mut sim, origin, sites[0], Itinerary::new(["site-0", "atlantis", "site-1"]));
        sim.run_until_idle();
        let done = &sim.node_ref::<StubOrigin>(origin).unwrap().completed;
        assert_eq!(done.len(), 1);
        assert!(done[0]
            .results
            .iter()
            .any(|r| r.key == "unreachable" && r.value == Value::Str("atlantis".into())));
        assert!(done[0].results.iter().any(|r| r.key == "visited" && r.site == "site-1"));
    }

    #[test]
    fn failing_agent_aborts_and_reports() {
        let (mut sim, origin, sites, _) = build(2, 5);
        let prog = assemble(".name bad\nfail \"no funds\"\n").unwrap();
        let agent = MobileAgent::new(
            AgentId("ag-f".into()),
            prog,
            vec![],
            Itinerary::new(["site-0", "site-1"]),
            origin as u64,
        );
        sim.inject(
            sites[0],
            origin,
            Message::new(KIND_TRANSFER, agent.to_bytes()),
            SimDuration::ZERO,
        );
        sim.run_until_idle();
        let done = &sim.node_ref::<StubOrigin>(origin).unwrap().completed;
        assert_eq!(done.len(), 1);
        let errs: Vec<_> = done[0].results.iter().filter(|r| r.key == "error").collect();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].value, Value::Str("no funds".into()));
        // site-1 never visited.
        assert!(!done[0].results.iter().any(|r| r.site == "site-1"));
    }

    #[test]
    fn runaway_agent_contained_by_fuel() {
        let (mut sim, origin, sites, _) = build(1, 6);
        let prog = assemble(".name spin\nloop:\njmp loop\n").unwrap();
        let mut agent = MobileAgent::new(
            AgentId("ag-spin".into()),
            prog,
            vec![],
            Itinerary::new(["site-0"]),
            origin as u64,
        );
        agent.fuel_per_hop = 50_000;
        sim.inject(
            sites[0],
            origin,
            Message::new(KIND_TRANSFER, agent.to_bytes()),
            SimDuration::ZERO,
        );
        sim.run_until_idle();
        let done = &sim.node_ref::<StubOrigin>(origin).unwrap().completed;
        assert_eq!(done.len(), 1);
        assert!(done[0]
            .results
            .iter()
            .any(|r| r.key == "error" && r.value == Value::Str("out of fuel".into())));
    }

    #[test]
    fn status_control_reports_record() {
        let (mut sim, origin, sites, _) = build(1, 7);
        // Controller node that queries status as soon as it starts.
        struct Controller {
            mas: NodeId,
            record: Option<AgentRecord>,
            not_found: bool,
        }
        impl Node for Controller {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                // Query after the agent has arrived (2 ms) but before it
                // departs (CPU base is 5 ms).
                ctx.set_timer(SimDuration::from_millis(3), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                ctx.send(
                    self.mas,
                    Message::new(
                        KIND_CONTROL,
                        encode_control(ControlOp::Status, &AgentId("ag-1".into())),
                    ),
                );
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
                if msg.kind == KIND_CONTROL_RESP {
                    let (_, id, found, payload) = decode_control_resp(&msg.body).unwrap();
                    assert_eq!(id, AgentId("ag-1".into()));
                    if found {
                        self.record = Some(AgentRecord::from_bytes(payload).unwrap());
                    } else {
                        self.not_found = true;
                    }
                }
            }
        }
        let ctl = sim.add_node(Box::new(Controller { mas: sites[0], record: None, not_found: false }));
        sim.connect(ctl, sites[0], LinkSpec::ideal());
        launch(&mut sim, origin, sites[0], Itinerary::new(["site-0"]));
        sim.run_until_idle();
        let c = sim.node_ref::<Controller>(ctl).unwrap();
        let rec = c.record.as_ref().expect("agent should be present at t=3ms");
        assert_eq!(rec.site, "site-0");
        assert_eq!(rec.hops_total, 1);
    }

    #[test]
    fn retract_pulls_agent_back() {
        let (mut sim, origin, sites, _) = build(1, 8);
        struct Retractor {
            mas: NodeId,
            completed: Vec<MobileAgent>,
            acked: bool,
        }
        impl Node for Retractor {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(3), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                ctx.send(
                    self.mas,
                    Message::new(
                        KIND_CONTROL,
                        encode_control(ControlOp::Retract, &AgentId("ag-1".into())),
                    ),
                );
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
                match msg.kind.as_str() {
                    KIND_COMPLETE => {
                        self.completed.push(MobileAgent::from_bytes(&msg.body).unwrap())
                    }
                    KIND_CONTROL_RESP => {
                        let (op, _, found, _) = decode_control_resp(&msg.body).unwrap();
                        assert_eq!(op, ControlOp::Retract);
                        self.acked = found;
                    }
                    _ => {}
                }
            }
        }
        let ctl = sim.add_node(Box::new(Retractor { mas: sites[0], completed: vec![], acked: false }));
        sim.connect(ctl, sites[0], LinkSpec::ideal());
        launch(&mut sim, origin, sites[0], Itinerary::new(["site-0"]));
        sim.run_until_idle();
        let c = sim.node_ref::<Retractor>(ctl).unwrap();
        assert!(c.acked);
        assert_eq!(c.completed.len(), 1);
        assert!(c.completed[0]
            .results
            .iter()
            .any(|r| r.key == "retracted"));
        // The origin did NOT also receive it.
        assert!(sim.node_ref::<StubOrigin>(origin).unwrap().completed.is_empty());
    }

    #[test]
    fn dispose_and_unknown_agent_control() {
        let (mut sim, origin, sites, _) = build(1, 9);
        struct Disposer {
            mas: NodeId,
            responses: Vec<(ControlOp, bool)>,
        }
        impl Node for Disposer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(3), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                ctx.send(
                    self.mas,
                    Message::new(
                        KIND_CONTROL,
                        encode_control(ControlOp::Dispose, &AgentId("ag-1".into())),
                    ),
                );
                ctx.send(
                    self.mas,
                    Message::new(
                        KIND_CONTROL,
                        encode_control(ControlOp::Dispose, &AgentId("ghost".into())),
                    ),
                );
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
                if msg.kind == KIND_CONTROL_RESP {
                    let (op, _, found, _) = decode_control_resp(&msg.body).unwrap();
                    self.responses.push((op, found));
                }
            }
        }
        let ctl = sim.add_node(Box::new(Disposer { mas: sites[0], responses: vec![] }));
        sim.connect(ctl, sites[0], LinkSpec::ideal());
        launch(&mut sim, origin, sites[0], Itinerary::new(["site-0"]));
        sim.run_until_idle();
        let c = sim.node_ref::<Disposer>(ctl).unwrap();
        assert_eq!(c.responses, vec![(ControlOp::Dispose, true), (ControlOp::Dispose, false)]);
        // Disposed: origin never sees the agent.
        assert!(sim.node_ref::<StubOrigin>(origin).unwrap().completed.is_empty());
    }

    #[test]
    fn clone_forks_an_independent_agent() {
        let (mut sim, origin, sites, _) = build(2, 10);
        struct Cloner {
            mas: NodeId,
            clone_id: Option<String>,
        }
        impl Node for Cloner {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(3), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                ctx.send(
                    self.mas,
                    Message::new(
                        KIND_CONTROL,
                        encode_control(ControlOp::Clone, &AgentId("ag-1".into())),
                    ),
                );
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
                if msg.kind == KIND_CONTROL_RESP {
                    let (_, _, found, payload) = decode_control_resp(&msg.body).unwrap();
                    if found {
                        self.clone_id =
                            Some(String::from_utf8(payload.to_vec()).unwrap());
                    }
                }
            }
        }
        let ctl = sim.add_node(Box::new(Cloner { mas: sites[0], clone_id: None }));
        sim.connect(ctl, sites[0], LinkSpec::ideal());
        launch(&mut sim, origin, sites[0], Itinerary::new(["site-0", "site-1"]));
        sim.run_until_idle();
        let c = sim.node_ref::<Cloner>(ctl).unwrap();
        let clone_id = c.clone_id.as_ref().expect("clone created");
        assert!(clone_id.starts_with("ag-1-clone"));
        // Both original and clone eventually return to origin.
        let done = &sim.node_ref::<StubOrigin>(origin).unwrap().completed;
        assert_eq!(done.len(), 2);
        let ids: Vec<&str> = done.iter().map(|a| a.id.0.as_str()).collect();
        assert!(ids.contains(&"ag-1"));
        assert!(ids.contains(&clone_id.as_str()));
    }

    #[test]
    fn cpu_model_scales_with_instructions() {
        let cpu = CpuModel::default();
        assert_eq!(cpu.exec_time(0), SimDuration::from_millis(5));
        assert_eq!(
            cpu.exec_time(1000),
            SimDuration::from_millis(5) + SimDuration::from_millis(2)
        );
    }

    #[test]
    fn control_codec_roundtrip() {
        for op in [ControlOp::Status, ControlOp::Retract, ControlOp::Dispose, ControlOp::Clone] {
            let body = encode_control(op, &AgentId("x-1".into()));
            assert_eq!(decode_control(&body), Some((op, AgentId("x-1".into()))));
            let resp = encode_control_resp(op, &AgentId("x-1".into()), true, b"pay");
            assert_eq!(
                decode_control_resp(&resp),
                Some((op, AgentId("x-1".into()), true, &b"pay"[..]))
            );
        }
        assert!(decode_control(&[]).is_none());
        assert!(decode_control(&[99, b'x']).is_none());
    }
}
