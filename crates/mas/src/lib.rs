//! # pdagent-mas
//!
//! The Mobile Agent Server — the reproduction's stand-in for IBM Aglets.
//!
//! The paper runs "a well known Java-based mobile agent system" at each
//! network site and stresses that "any mobile agent system can be used". This
//! crate provides that substrate for the simulation: a [`server::MasNode`]
//! hosts arriving agents, executes their bytecode against the site's
//! registered [`service::Service`]s, models execution time on the site CPU,
//! and forwards each agent along its itinerary — returning it to its origin
//! gateway when the itinerary is exhausted (§3.3: "the mobile agent will
//! return to the Gateway where it is dispatched").
//!
//! Lifecycle management (paper §3.6) is supported through control messages:
//! *retract* (pull the agent back to the gateway immediately), *dispose*
//! (destroy it), *clone* (fork a copy that continues independently) and
//! *status* — the same verb set Aglets exposes.
//!
//! Reliability: agent transfers are acknowledged; if the next site is down,
//! the sender skips it after a timeout, records the miss in the agent's
//! results, and continues — so one dead bank does not strand the user's
//! e-banking agent.

pub mod agent;
pub mod batch;
pub mod server;
pub mod service;

pub use agent::{AgentId, AgentRecord, Itinerary, MobileAgent, ResultEntry};
pub use batch::BatchMasNode;
pub use server::{CpuModel, MasNode, SiteDirectory};
pub use service::{EchoService, KvService, MailboxService, Service};

/// Message kind: an agent in transit between sites (or site → gateway).
pub const KIND_TRANSFER: &str = "mas.transfer";
/// Message kind: acknowledgment of a transfer.
pub const KIND_ACK: &str = "mas.ack";
/// Message kind: a finished agent returning to its origin gateway.
pub const KIND_COMPLETE: &str = "mas.complete";
/// Message kind: a management request (retract/dispose/clone/status).
pub const KIND_CONTROL: &str = "mas.control";
/// Message kind: management response.
pub const KIND_CONTROL_RESP: &str = "mas.control.resp";
