//! The migrating agent record and its wire serialization.

use pdagent_codec::varint;
use pdagent_vm::{AgentState, Program, Value};

/// Globally unique agent identifier (assigned by the creating gateway).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub String);

impl std::fmt::Display for AgentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The ordered list of site names an agent visits.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Itinerary {
    /// Site names, in visit order.
    pub sites: Vec<String>,
}

impl Itinerary {
    /// Itinerary over the given sites.
    pub fn new<S: Into<String>>(sites: impl IntoIterator<Item = S>) -> Itinerary {
        Itinerary { sites: sites.into_iter().map(Into::into).collect() }
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if there are no hops.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

/// One `(site, key, value)` triple emitted by the agent during execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultEntry {
    /// Site at which the value was emitted.
    pub site: String,
    /// Result key (the `emit "<key>"` operand).
    pub key: String,
    /// Emitted value.
    pub value: Value,
}

/// A mobile agent in flight: code + launch parameters + migrating state +
/// itinerary progress + accumulated results.
#[derive(Debug, Clone, PartialEq)]
pub struct MobileAgent {
    /// Unique id.
    pub id: AgentId,
    /// The bytecode program (the "agent class" in the paper's Java terms).
    pub program: Program,
    /// Launch parameters from the Packed Information.
    pub params: Vec<(String, Value)>,
    /// Migrating VM state (globals persist across hops).
    pub state: AgentState,
    /// The itinerary.
    pub itinerary: Itinerary,
    /// Index of the next site to visit (sites before this are done).
    pub next_hop: usize,
    /// Results accumulated so far.
    pub results: Vec<ResultEntry>,
    /// Node id of the origin gateway to return to.
    pub origin: u64,
    /// Fuel budget per site visit.
    pub fuel_per_hop: u64,
}

/// Serialization failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentDecodeError;

impl std::fmt::Display for AgentDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed agent record")
    }
}

impl std::error::Error for AgentDecodeError {}

fn write_str(out: &mut Vec<u8>, s: &str) {
    varint::write_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn read_str(input: &[u8], pos: &mut usize) -> Result<String, AgentDecodeError> {
    let len = varint::read_usize(input, pos).map_err(|_| AgentDecodeError)?;
    let end = pos.checked_add(len).ok_or(AgentDecodeError)?;
    if end > input.len() {
        return Err(AgentDecodeError);
    }
    let s = std::str::from_utf8(&input[*pos..end])
        .map_err(|_| AgentDecodeError)?
        .to_owned();
    *pos = end;
    Ok(s)
}

fn read_count(input: &[u8], pos: &mut usize) -> Result<usize, AgentDecodeError> {
    let n = varint::read_usize(input, pos).map_err(|_| AgentDecodeError)?;
    if n > input.len() {
        return Err(AgentDecodeError);
    }
    Ok(n)
}

impl MobileAgent {
    /// A fresh agent ready for dispatch from `origin`.
    pub fn new(
        id: AgentId,
        program: Program,
        params: Vec<(String, Value)>,
        itinerary: Itinerary,
        origin: u64,
    ) -> MobileAgent {
        MobileAgent {
            id,
            program,
            params,
            state: AgentState::default(),
            itinerary,
            next_hop: 0,
            results: Vec::new(),
            origin,
            fuel_per_hop: 1_000_000,
        }
    }

    /// Name of the site to visit next, if any remain.
    pub fn next_site(&self) -> Option<&str> {
        self.itinerary.sites.get(self.next_hop).map(String::as_str)
    }

    /// Itinerary finished?
    pub fn done(&self) -> bool {
        self.next_hop >= self.itinerary.sites.len()
    }

    /// Record a result entry.
    pub fn push_result(&mut self, site: &str, key: &str, value: Value) {
        self.results.push(ResultEntry {
            site: site.to_owned(),
            key: key.to_owned(),
            value,
        });
    }

    /// Binary wire form (used for transfer messages — this is what the paper
    /// serializes as "the agent" between Aglets servers).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        write_str(&mut out, &self.id.0);
        let prog = self.program.to_bytes();
        varint::write_usize(&mut out, prog.len());
        out.extend_from_slice(&prog);
        varint::write_usize(&mut out, self.params.len());
        for (k, v) in &self.params {
            write_str(&mut out, k);
            v.encode(&mut out);
        }
        let state = self.state.to_bytes();
        varint::write_usize(&mut out, state.len());
        out.extend_from_slice(&state);
        varint::write_usize(&mut out, self.itinerary.sites.len());
        for s in &self.itinerary.sites {
            write_str(&mut out, s);
        }
        varint::write_usize(&mut out, self.next_hop);
        varint::write_usize(&mut out, self.results.len());
        for r in &self.results {
            write_str(&mut out, &r.site);
            write_str(&mut out, &r.key);
            r.value.encode(&mut out);
        }
        varint::write_u64(&mut out, self.origin);
        varint::write_u64(&mut out, self.fuel_per_hop);
        out
    }

    /// Parse the binary wire form.
    pub fn from_bytes(input: &[u8]) -> Result<MobileAgent, AgentDecodeError> {
        let mut pos = 0;
        let id = AgentId(read_str(input, &mut pos)?);
        let prog_len = read_count(input, &mut pos)?;
        let prog_end = pos.checked_add(prog_len).ok_or(AgentDecodeError)?;
        if prog_end > input.len() {
            return Err(AgentDecodeError);
        }
        let program =
            Program::from_bytes(&input[pos..prog_end]).map_err(|_| AgentDecodeError)?;
        pos = prog_end;
        let n_params = read_count(input, &mut pos)?;
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            let k = read_str(input, &mut pos)?;
            let v = Value::decode(input, &mut pos).map_err(|_| AgentDecodeError)?;
            params.push((k, v));
        }
        let state_len = read_count(input, &mut pos)?;
        let state_end = pos.checked_add(state_len).ok_or(AgentDecodeError)?;
        if state_end > input.len() {
            return Err(AgentDecodeError);
        }
        let state = AgentState::from_bytes(&input[pos..state_end]).ok_or(AgentDecodeError)?;
        pos = state_end;
        let n_sites = read_count(input, &mut pos)?;
        let mut sites = Vec::with_capacity(n_sites);
        for _ in 0..n_sites {
            sites.push(read_str(input, &mut pos)?);
        }
        let next_hop = varint::read_usize(input, &mut pos).map_err(|_| AgentDecodeError)?;
        let n_results = read_count(input, &mut pos)?;
        let mut results = Vec::with_capacity(n_results);
        for _ in 0..n_results {
            let site = read_str(input, &mut pos)?;
            let key = read_str(input, &mut pos)?;
            let value = Value::decode(input, &mut pos).map_err(|_| AgentDecodeError)?;
            results.push(ResultEntry { site, key, value });
        }
        let origin = varint::read_u64(input, &mut pos).map_err(|_| AgentDecodeError)?;
        let fuel_per_hop = varint::read_u64(input, &mut pos).map_err(|_| AgentDecodeError)?;
        Ok(MobileAgent {
            id,
            program,
            params,
            state,
            itinerary: Itinerary { sites },
            next_hop,
            results,
            origin,
            fuel_per_hop,
        })
    }
}

/// A lightweight status snapshot of an agent (for `status` control queries
/// and the device's agent-management screen).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentRecord {
    /// Agent id.
    pub id: AgentId,
    /// Site currently hosting the agent.
    pub site: String,
    /// Completed hops.
    pub hops_done: usize,
    /// Total hops.
    pub hops_total: usize,
    /// Instructions executed so far.
    pub instructions: u64,
}

impl AgentRecord {
    /// Serialize (for control responses).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_str(&mut out, &self.id.0);
        write_str(&mut out, &self.site);
        varint::write_usize(&mut out, self.hops_done);
        varint::write_usize(&mut out, self.hops_total);
        varint::write_u64(&mut out, self.instructions);
        out
    }

    /// Deserialize.
    pub fn from_bytes(input: &[u8]) -> Result<AgentRecord, AgentDecodeError> {
        let mut pos = 0;
        let id = AgentId(read_str(input, &mut pos)?);
        let site = read_str(input, &mut pos)?;
        let hops_done = varint::read_usize(input, &mut pos).map_err(|_| AgentDecodeError)?;
        let hops_total = varint::read_usize(input, &mut pos).map_err(|_| AgentDecodeError)?;
        let instructions = varint::read_u64(input, &mut pos).map_err(|_| AgentDecodeError)?;
        Ok(AgentRecord { id, site, hops_done, hops_total, instructions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdagent_vm::assemble;

    fn sample_agent() -> MobileAgent {
        let program = assemble(
            r#"
            .name test-agent
            param "x"
            emit "seen"
            halt
        "#,
        )
        .unwrap();
        let mut agent = MobileAgent::new(
            AgentId("ag-1".into()),
            program,
            vec![("x".into(), Value::Int(7))],
            Itinerary::new(["bank-a", "bank-b"]),
            42,
        );
        agent.state.globals.insert("visits".into(), Value::Int(1));
        agent.next_hop = 1;
        agent.push_result("bank-a", "receipt", Value::Str("r-1".into()));
        agent
    }

    #[test]
    fn roundtrip() {
        let agent = sample_agent();
        let bytes = agent.to_bytes();
        assert_eq!(MobileAgent::from_bytes(&bytes).unwrap(), agent);
    }

    #[test]
    fn truncation_fails_cleanly() {
        let bytes = sample_agent().to_bytes();
        for cut in [0, 1, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(MobileAgent::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn itinerary_progress() {
        let mut agent = sample_agent();
        assert_eq!(agent.next_site(), Some("bank-b"));
        assert!(!agent.done());
        agent.next_hop = 2;
        assert_eq!(agent.next_site(), None);
        assert!(agent.done());
    }

    #[test]
    fn empty_itinerary_is_done() {
        let agent = MobileAgent::new(
            AgentId("a".into()),
            Program::default(),
            vec![],
            Itinerary::default(),
            0,
        );
        assert!(agent.done());
        assert!(agent.itinerary.is_empty());
    }

    #[test]
    fn record_roundtrip() {
        let rec = AgentRecord {
            id: AgentId("ag-9".into()),
            site: "bank-b".into(),
            hops_done: 1,
            hops_total: 3,
            instructions: 12345,
        };
        assert_eq!(AgentRecord::from_bytes(&rec.to_bytes()).unwrap(), rec);
    }

    #[test]
    fn results_accumulate() {
        let mut agent = sample_agent();
        agent.push_result("bank-b", "receipt", Value::Str("r-2".into()));
        assert_eq!(agent.results.len(), 2);
        assert_eq!(agent.results[1].site, "bank-b");
    }
}
