//! Site services — the paper's "Service Agents".
//!
//! In the e-banking application "there is a Mobile Agent Server (MAS) with a
//! Service Agent within each bank. When the client's agent arrived at each
//! bank, it will execute the transaction by communicating with the Service
//! Agent." A [`Service`] is that stationary counterpart: a named object
//! registered at a MAS that visiting agents invoke operations on.

use pdagent_vm::Value;

/// A stationary service agent at a site.
///
/// `Send` because services live inside simulator nodes, and whole simulators
/// migrate between the sharded engine's worker threads.
pub trait Service: Send {
    /// Handle `op(args…)`, returning a value to the visiting agent or an
    /// error string (which traps the agent's VM and aborts its itinerary).
    fn invoke(&mut self, op: &str, args: &[Value]) -> Result<Value, String>;
}

/// A service that echoes its inputs: `echo(op, args) = "op(arg1,arg2,…)"`.
/// Useful in tests and as a liveness probe.
#[derive(Debug, Default)]
pub struct EchoService;

impl Service for EchoService {
    fn invoke(&mut self, op: &str, args: &[Value]) -> Result<Value, String> {
        let rendered: Vec<String> = args.iter().map(Value::render).collect();
        Ok(Value::Str(format!("{op}({})", rendered.join(","))))
    }
}

/// A small key-value store service: `put(key, value)`, `get(key)`,
/// `delete(key)`, `len()`. The food-search example uses one per restaurant
/// directory site.
#[derive(Debug, Default)]
pub struct KvService {
    entries: std::collections::BTreeMap<String, Value>,
}

impl KvService {
    /// Empty store.
    pub fn new() -> KvService {
        KvService::default()
    }

    /// Pre-populate an entry (builder style).
    pub fn with(mut self, key: impl Into<String>, value: Value) -> KvService {
        self.entries.insert(key.into(), value);
        self
    }
}

impl Service for KvService {
    fn invoke(&mut self, op: &str, args: &[Value]) -> Result<Value, String> {
        let key_arg = |i: usize| -> Result<String, String> {
            args.get(i)
                .and_then(|v| v.as_str())
                .map(str::to_owned)
                .ok_or_else(|| format!("kv.{op}: argument {i} must be a string key"))
        };
        match op {
            "put" => {
                let key = key_arg(0)?;
                let value =
                    args.get(1).cloned().ok_or_else(|| "kv.put: missing value".to_owned())?;
                self.entries.insert(key, value);
                Ok(Value::Bool(true))
            }
            "get" => {
                let key = key_arg(0)?;
                Ok(self.entries.get(&key).cloned().unwrap_or(Value::Nil))
            }
            "delete" => {
                let key = key_arg(0)?;
                Ok(Value::Bool(self.entries.remove(&key).is_some()))
            }
            "len" => Ok(Value::Int(self.entries.len() as i64)),
            "keys" => Ok(Value::List(
                self.entries.keys().map(|k| Value::Str(k.clone())).collect(),
            )),
            other => Err(format!("kv: unknown operation {other:?}")),
        }
    }
}

/// A mailbox service, after the mailbox-based mobile-agent communication
/// scheme of Cao et al. (the paper's reference \[1\]): agents address each
/// other by name through stationary per-site mailboxes instead of chasing
/// each other across the network.
///
/// Operations: `send(to, message)` → true; `recv(me)` → list of pending
/// messages for `me` (drained); `peek(me)` → count without draining.
#[derive(Debug, Default)]
pub struct MailboxService {
    boxes: std::collections::BTreeMap<String, Vec<Value>>,
}

impl MailboxService {
    /// Empty mailbox rack.
    pub fn new() -> MailboxService {
        MailboxService::default()
    }
}

impl Service for MailboxService {
    fn invoke(&mut self, op: &str, args: &[Value]) -> Result<Value, String> {
        let name_arg = |i: usize| -> Result<String, String> {
            args.get(i)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("mailbox.{op}: argument {i} must be a name"))
        };
        match op {
            "send" => {
                let to = name_arg(0)?;
                let msg = args
                    .get(1)
                    .cloned()
                    .ok_or_else(|| "mailbox.send: missing message".to_owned())?;
                self.boxes.entry(to).or_default().push(msg);
                Ok(Value::Bool(true))
            }
            "recv" => {
                let me = name_arg(0)?;
                Ok(Value::List(self.boxes.remove(&me).unwrap_or_default()))
            }
            "peek" => {
                let me = name_arg(0)?;
                Ok(Value::Int(
                    self.boxes.get(&me).map(|v| v.len() as i64).unwrap_or(0),
                ))
            }
            other => Err(format!("mailbox: unknown operation {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_renders_call() {
        let mut svc = EchoService;
        let out = svc
            .invoke("greet", &[Value::Str("alice".into()), Value::Int(3)])
            .unwrap();
        assert_eq!(out, Value::Str("greet(alice,3)".into()));
    }

    #[test]
    fn kv_put_get_delete() {
        let mut kv = KvService::new();
        assert_eq!(
            kv.invoke("put", &[Value::Str("k".into()), Value::Int(1)]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(kv.invoke("get", &[Value::Str("k".into())]).unwrap(), Value::Int(1));
        assert_eq!(kv.invoke("len", &[]).unwrap(), Value::Int(1));
        assert_eq!(
            kv.invoke("delete", &[Value::Str("k".into())]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(kv.invoke("get", &[Value::Str("k".into())]).unwrap(), Value::Nil);
        assert_eq!(
            kv.invoke("delete", &[Value::Str("k".into())]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn kv_keys_sorted() {
        let mut kv = KvService::new().with("b", Value::Int(2)).with("a", Value::Int(1));
        assert_eq!(
            kv.invoke("keys", &[]).unwrap(),
            Value::List(vec![Value::Str("a".into()), Value::Str("b".into())])
        );
    }

    #[test]
    fn mailbox_send_recv_peek() {
        let mut mb = MailboxService::new();
        mb.invoke("send", &[Value::Str("ag-2".into()), Value::Str("partial".into())])
            .unwrap();
        mb.invoke("send", &[Value::Str("ag-2".into()), Value::Int(42)]).unwrap();
        assert_eq!(mb.invoke("peek", &[Value::Str("ag-2".into())]).unwrap(), Value::Int(2));
        assert_eq!(mb.invoke("peek", &[Value::Str("ag-9".into())]).unwrap(), Value::Int(0));
        let got = mb.invoke("recv", &[Value::Str("ag-2".into())]).unwrap();
        assert_eq!(
            got,
            Value::List(vec![Value::Str("partial".into()), Value::Int(42)])
        );
        // Drained.
        assert_eq!(
            mb.invoke("recv", &[Value::Str("ag-2".into())]).unwrap(),
            Value::List(vec![])
        );
        assert!(mb.invoke("send", &[Value::Str("x".into())]).is_err());
        assert!(mb.invoke("burn", &[]).is_err());
    }

    #[test]
    fn kv_errors() {
        let mut kv = KvService::new();
        assert!(kv.invoke("get", &[]).is_err());
        assert!(kv.invoke("get", &[Value::Int(3)]).is_err());
        assert!(kv.invoke("put", &[Value::Str("k".into())]).is_err());
        assert!(kv.invoke("explode", &[]).is_err());
    }
}
