//! [`BatchMasNode`]: a *second, independently engineered* mobile-agent
//! server that speaks the same transfer protocol as [`crate::MasNode`].
//!
//! The paper's central interoperability claim is that PDAgent "supports the
//! adoption of any kind of mobile agent system at the network host" — in
//! their prototype IBM Aglets, but "any mobile agent system can be used".
//! This type is the reproduction's proof of that: a MAS with a completely
//! different execution discipline (arrivals are queued and executed in
//! periodic batches, the way cron-driven or thread-pool-per-tick servers
//! behave, instead of [`crate::MasNode`]'s per-arrival scheduling), no ack
//! retries (it relies on the sender's retry), and its own CPU model — yet
//! agents flow through itineraries that mix both server kinds because the
//! wire contract (`mas.transfer`/`mas.ack`/`mas.complete` + the agent
//! serialization) is all they share.

use std::collections::HashMap;
use std::collections::VecDeque;

use pdagent_net::prelude::*;
use pdagent_vm::{run, Host, Outcome, Value};

use crate::agent::MobileAgent;
use crate::server::SiteDirectory;
use crate::service::Service;
use crate::{KIND_ACK, KIND_COMPLETE, KIND_TRANSFER};

const TAG_TICK: u64 = 1;

/// The batch-scheduled mobile agent server.
pub struct BatchMasNode {
    site_name: String,
    directory: SiteDirectory,
    services: HashMap<String, Box<dyn Service>>,
    /// Queued agents with their journey context and open `itinerary.hop`
    /// span (carried beside the agent — the wire format stays shared with
    /// [`crate::MasNode`]).
    queue: VecDeque<(MobileAgent, ObsContext, u32)>,
    /// How often the batch executor wakes up.
    pub tick: SimDuration,
    /// Per-agent execution cost charged at batch time.
    pub exec_cost: SimDuration,
    /// Agents executed (for reporting).
    pub executed: u64,
    /// Whether a tick timer is currently armed (the executor sleeps when
    /// the queue is empty, so an idle simulation can drain).
    tick_armed: bool,
}

struct BatchHost<'a> {
    site: &'a str,
    services: &'a mut HashMap<String, Box<dyn Service>>,
    params: &'a [(String, Value)],
    emitted: Vec<(String, Value)>,
    hops_done: usize,
    hops_total: usize,
    abort: bool,
}

impl Host for BatchHost<'_> {
    fn invoke(&mut self, service: &str, op: &str, args: &[Value]) -> Result<Value, String> {
        if service == "agent" {
            return match op {
                "abort" => {
                    self.abort = true;
                    Ok(Value::Bool(true))
                }
                "hops_done" => Ok(Value::Int(self.hops_done as i64)),
                "hops_total" => Ok(Value::Int(self.hops_total as i64)),
                other => Err(format!("agent: unknown operation {other:?}")),
            };
        }
        match self.services.get_mut(service) {
            Some(svc) => svc.invoke(op, args),
            None => Err(format!("site {} has no service {service:?}", self.site)),
        }
    }
    fn param(&self, name: &str) -> Option<Value> {
        self.params.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone())
    }
    fn emit(&mut self, key: &str, value: Value) {
        self.emitted.push((key.to_owned(), value));
    }
    fn site_name(&self) -> &str {
        self.site
    }
}

impl BatchMasNode {
    /// A batch MAS for `site_name` ticking every 50 ms.
    pub fn new(site_name: impl Into<String>, directory: SiteDirectory) -> BatchMasNode {
        BatchMasNode {
            site_name: site_name.into(),
            directory,
            services: HashMap::new(),
            queue: VecDeque::new(),
            tick: SimDuration::from_millis(50),
            exec_cost: SimDuration::from_millis(8),
            executed: 0,
            tick_armed: false,
        }
    }

    fn arm_tick(&mut self, ctx: &mut Ctx<'_>, delay: SimDuration) {
        if !self.tick_armed {
            self.tick_armed = true;
            ctx.set_timer(delay, TAG_TICK);
        }
    }

    /// Register a service agent.
    pub fn register_service(&mut self, name: impl Into<String>, service: Box<dyn Service>) {
        self.services.insert(name.into(), service);
    }

    fn run_one(&mut self, ctx: &mut Ctx<'_>, mut agent: MobileAgent, jctx: ObsContext, hop: u32) {
        if agent.next_site() == Some(self.site_name.as_str()) {
            let mut host = BatchHost {
                site: &self.site_name,
                services: &mut self.services,
                params: &agent.params,
                emitted: Vec::new(),
                hops_done: agent.next_hop,
                hops_total: agent.itinerary.len(),
                abort: false,
            };
            let outcome = run(&agent.program, &mut agent.state, &mut host, agent.fuel_per_hop);
            let emitted = std::mem::take(&mut host.emitted);
            let abort = host.abort;
            for (key, value) in emitted {
                agent.push_result(&self.site_name, &key, value);
            }
            match outcome {
                Outcome::Completed => {
                    agent.next_hop += 1;
                    if abort {
                        agent.next_hop = agent.itinerary.len();
                    }
                }
                Outcome::Failed(msg) => {
                    agent.push_result(&self.site_name, "error", Value::Str(msg));
                    agent.next_hop = agent.itinerary.len();
                }
                Outcome::OutOfFuel => {
                    agent.push_result(
                        &self.site_name,
                        "error",
                        Value::Str("out of fuel".into()),
                    );
                    agent.next_hop = agent.itinerary.len();
                }
                Outcome::Trapped(e) => {
                    agent.push_result(&self.site_name, "error", Value::Str(e.to_string()));
                    agent.next_hop = agent.itinerary.len();
                }
            }
            self.executed += 1;
            ctx.metrics().bump("batchmas.agents_executed", 1.0);
        }
        // Forward (fire-and-forget: the batch server leans on the *sender's*
        // retry for reliability, a deliberately different design). Onward
        // messages carry the journey context the transfer arrived with.
        if agent.done() {
            let origin = agent.origin as NodeId;
            ctx.send(origin, Message::new(KIND_COMPLETE, agent.to_bytes()).traced(jctx));
            ctx.span_end(hop);
        } else if let Some(next) =
            agent.next_site().and_then(|s| self.directory.resolve(s))
        {
            ctx.send(next, Message::new(KIND_TRANSFER, agent.to_bytes()).traced(jctx));
            ctx.span_end(hop);
        } else {
            // Unknown next site: skip it, then try again (still resident —
            // the hop span stays open).
            let site = agent.next_site().unwrap_or("?").to_owned();
            agent.push_result(&self.site_name, "unreachable", Value::Str(site));
            agent.next_hop += 1;
            self.queue.push_back((agent, jctx, hop));
        }
    }
}

impl Node for BatchMasNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        if msg.kind == KIND_TRANSFER {
            if let Ok(agent) = MobileAgent::from_bytes(&msg.body) {
                ctx.send(from, Message::new(KIND_ACK, agent.id.0.clone().into_bytes()));
                // Duplicate (our ack was lost)? Drop it.
                if self.queue.iter().any(|(a, _, _)| a.id == agent.id) {
                    return;
                }
                // Residence span: queued-waiting-for-tick counts as part of
                // the hop — that wait is the batch server's defining cost.
                let hop = ctx.span_begin_indexed(
                    msg.obs.trace,
                    msg.obs.span,
                    "itinerary.hop",
                    Some(agent.next_hop as u32),
                );
                self.queue.push_back((agent, msg.obs, hop));
                ctx.metrics().set_gauge("batchmas.queued_agents", self.queue.len() as f64);
                let delay = self.tick;
                self.arm_tick(ctx, delay);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag != TAG_TICK {
            return;
        }
        self.tick_armed = false;
        // Drain the whole queue this tick, charging exec_cost per agent by
        // *delaying the next tick* (the batch runner is busy).
        let batch: Vec<(MobileAgent, ObsContext, u32)> = self.queue.drain(..).collect();
        let busy = SimDuration(self.exec_cost.as_micros() * batch.len() as u64);
        for (agent, jctx, hop) in batch {
            self.run_one(ctx, agent, jctx, hop);
        }
        ctx.metrics().set_gauge("batchmas.queued_agents", self.queue.len() as f64);
        if !self.queue.is_empty() {
            let delay = self.tick + busy;
            self.arm_tick(ctx, delay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{AgentId, Itinerary};
    use crate::server::MasNode;
    use crate::service::EchoService;
    use pdagent_net::link::LinkSpec;
    use pdagent_net::sim::Simulator;
    use pdagent_vm::assemble;

    #[derive(Default)]
    struct StubOrigin {
        completed: Vec<MobileAgent>,
    }
    impl Node for StubOrigin {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
            if msg.kind == KIND_COMPLETE {
                self.completed.push(MobileAgent::from_bytes(&msg.body).unwrap());
            }
        }
    }

    fn tour_program() -> pdagent_vm::Program {
        assemble(
            r#"
            .name mixed-tour
            site
            invoke "echo" "visit" 1
            emit "visited"
            halt
        "#,
        )
        .unwrap()
    }

    /// An itinerary alternating between the per-arrival MAS and the batch
    /// MAS — the interoperability demonstration.
    #[test]
    fn mixed_server_kinds_complete_an_itinerary() {
        let mut sim = Simulator::new(1);
        let origin = sim.add_node(Box::<StubOrigin>::default());
        let mut directory = SiteDirectory::new();
        directory.insert("aglets-like", 1);
        directory.insert("batch-like", 2);
        directory.insert("aglets-like-2", 3);
        let mut m1 = MasNode::new("aglets-like", directory.clone());
        m1.register_service("echo", Box::new(EchoService));
        sim.add_node(Box::new(m1));
        let mut m2 = BatchMasNode::new("batch-like", directory.clone());
        m2.register_service("echo", Box::new(EchoService));
        sim.add_node(Box::new(m2));
        let mut m3 = MasNode::new("aglets-like-2", directory.clone());
        m3.register_service("echo", Box::new(EchoService));
        sim.add_node(Box::new(m3));
        for a in 0..4usize {
            for b in (a + 1)..4 {
                sim.connect(a, b, LinkSpec::lan());
            }
        }
        let agent = MobileAgent::new(
            AgentId("mixed-1".into()),
            tour_program(),
            vec![],
            Itinerary::new(["aglets-like", "batch-like", "aglets-like-2"]),
            origin as u64,
        );
        sim.inject(1, origin, Message::new(KIND_TRANSFER, agent.to_bytes()), SimDuration::ZERO);
        sim.run_until_idle();
        let done = &sim.node_ref::<StubOrigin>(origin).unwrap().completed;
        assert_eq!(done.len(), 1);
        let sites: Vec<&str> = done[0]
            .results
            .iter()
            .filter(|r| r.key == "visited")
            .map(|r| r.site.as_str())
            .collect();
        assert_eq!(sites, vec!["aglets-like", "batch-like", "aglets-like-2"]);
        // The batch server actually executed it.
        let batch = sim.node_ref::<BatchMasNode>(2).unwrap();
        assert_eq!(batch.executed, 1);
    }

    #[test]
    fn batch_server_amortizes_a_burst() {
        // Five agents arrive within one tick; all run in the same batch.
        let mut sim = Simulator::new(2);
        let origin = sim.add_node(Box::<StubOrigin>::default());
        let mut directory = SiteDirectory::new();
        directory.insert("batch", 1);
        let mut mas = BatchMasNode::new("batch", directory.clone());
        mas.register_service("echo", Box::new(EchoService));
        sim.add_node(Box::new(mas));
        sim.connect(origin, 1, LinkSpec::ideal());
        for i in 0..5 {
            let agent = MobileAgent::new(
                AgentId(format!("burst-{i}")),
                tour_program(),
                vec![],
                Itinerary::new(["batch"]),
                origin as u64,
            );
            sim.inject(
                1,
                origin,
                Message::new(KIND_TRANSFER, agent.to_bytes()),
                SimDuration::from_millis(i),
            );
        }
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<StubOrigin>(origin).unwrap().completed.len(), 5);
        assert_eq!(sim.node_ref::<BatchMasNode>(1).unwrap().executed, 5);
    }

    #[test]
    fn batch_server_dedups_retransmitted_transfers() {
        let mut sim = Simulator::new(3);
        let origin = sim.add_node(Box::<StubOrigin>::default());
        let mut directory = SiteDirectory::new();
        directory.insert("batch", 1);
        let mut mas = BatchMasNode::new("batch", directory);
        mas.register_service("echo", Box::new(EchoService));
        sim.add_node(Box::new(mas));
        sim.connect(origin, 1, LinkSpec::ideal());
        let agent = MobileAgent::new(
            AgentId("dup-1".into()),
            tour_program(),
            vec![],
            Itinerary::new(["batch"]),
            origin as u64,
        );
        // The same transfer arrives twice (sender retried before the ack).
        let body = agent.to_bytes();
        sim.inject(1, origin, Message::new(KIND_TRANSFER, body.clone()), SimDuration::ZERO);
        sim.inject(1, origin, Message::new(KIND_TRANSFER, body), SimDuration::from_millis(1));
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<StubOrigin>(origin).unwrap().completed.len(), 1);
        assert_eq!(sim.node_ref::<BatchMasNode>(1).unwrap().executed, 1);
    }
}
