//! # pdagent-codec
//!
//! Byte-level encodings used by the PDAgent wire formats.
//!
//! The paper compresses mobile-agent code "using simple text compression
//! algorithms" before storing it in the device database and before shipping
//! the Packed Information to the gateway, to "minimize the size of the
//! transferred packet and thus reduce the transmission time" (§3). This crate
//! provides those pieces, built from scratch:
//!
//! * [`base64`] — RFC 4648 base64, used to embed binary agent code and
//!   ciphertext inside XML documents.
//! * [`hex`] — lowercase hex, used for digests and identifiers.
//! * [`varint`] — LEB128-style unsigned varints for binary framing.
//! * [`bitio`] — MSB-first bit reader/writer underlying the entropy coder.
//! * [`rle`] — run-length encoding (the simplest baseline).
//! * [`lzss`] — an LZSS dictionary compressor (4 KiB window), the workhorse.
//! * [`huffman`] — a canonical, static Huffman coder.
//! * [`compress`] — the self-describing container format (`PDAZ`) combining
//!   an algorithm byte with the original length, so any receiver can decode.
//!
//! ```
//! use pdagent_codec::compress::{compress, decompress, Algorithm};
//! let data = b"the quick brown fox jumps over the lazy dog, the lazy dog sleeps";
//! let packed = compress(data, Algorithm::Lzss);
//! assert_eq!(decompress(&packed).unwrap(), data);
//! ```

pub mod base64;
pub mod bitio;
pub mod compress;
pub mod hex;
pub mod huffman;
pub mod lzss;
pub mod rle;
pub mod varint;

pub use compress::{compress, decompress, Algorithm, CodecError};
