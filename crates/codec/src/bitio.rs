//! MSB-first bit-level I/O, shared by the LZSS and Huffman coders.

/// Accumulates bits MSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    current: u8,
    used: u8,
}

impl BitWriter {
    /// New, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write a single bit (any nonzero `bit` counts as 1).
    pub fn write_bit(&mut self, bit: bool) {
        self.current = (self.current << 1) | bit as u8;
        self.used += 1;
        if self.used == 8 {
            self.out.push(self.current);
            self.current = 0;
            self.used = 0;
        }
    }

    /// Write the low `count` bits of `value`, MSB first.
    ///
    /// # Panics
    /// Panics if `count > 32`.
    pub fn write_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "write_bits supports at most 32 bits");
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Number of complete bytes plus any partial byte.
    pub fn byte_len(&self) -> usize {
        self.out.len() + usize::from(self.used > 0)
    }

    /// Pad the final partial byte with zero bits and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.current <<= 8 - self.used;
            self.out.push(self.current);
        }
        self.out
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    input: &'a [u8],
    byte_pos: usize,
    bit_pos: u8,
}

/// Error returned when the bit stream runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitEof;

impl std::fmt::Display for BitEof {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unexpected end of bit stream")
    }
}

impl std::error::Error for BitEof {}

impl<'a> BitReader<'a> {
    /// Reader over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        BitReader { input, byte_pos: 0, bit_pos: 0 }
    }

    /// Read one bit.
    pub fn read_bit(&mut self) -> Result<bool, BitEof> {
        let byte = *self.input.get(self.byte_pos).ok_or(BitEof)?;
        let bit = (byte >> (7 - self.bit_pos)) & 1 == 1;
        self.bit_pos += 1;
        if self.bit_pos == 8 {
            self.bit_pos = 0;
            self.byte_pos += 1;
        }
        Ok(bit)
    }

    /// Read `count` bits MSB-first into the low bits of a `u32`.
    ///
    /// # Panics
    /// Panics if `count > 32`.
    pub fn read_bits(&mut self, count: u8) -> Result<u32, BitEof> {
        assert!(count <= 32, "read_bits supports at most 32 bits");
        let mut value = 0u32;
        for _ in 0..count {
            value = (value << 1) | self.read_bit()? as u32;
        }
        Ok(value)
    }

    /// Bits remaining in the stream.
    pub fn remaining_bits(&self) -> usize {
        (self.input.len() - self.byte_pos) * 8 - self.bit_pos as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xABCD, 16);
        w.write_bits(0, 1);
        w.write_bits(u32::MAX, 32);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(32).unwrap(), u32::MAX);
    }

    #[test]
    fn eof_detected() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
        assert_eq!(r.read_bit(), Err(BitEof));
    }

    #[test]
    fn remaining_bits_counts_down() {
        let mut r = BitReader::new(&[0, 0]);
        assert_eq!(r.remaining_bits(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.remaining_bits(), 11);
    }

    #[test]
    fn byte_len_includes_partial() {
        let mut w = BitWriter::new();
        assert_eq!(w.byte_len(), 0);
        w.write_bit(true);
        assert_eq!(w.byte_len(), 1);
        w.write_bits(0, 7);
        assert_eq!(w.byte_len(), 1);
        w.write_bit(true);
        assert_eq!(w.byte_len(), 2);
    }

    #[test]
    fn padding_is_zero_bits() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1000_0000]);
    }
}
