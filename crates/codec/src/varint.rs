//! LEB128-style unsigned varints, used by the binary framings (compressed
//! container, agent bytecode serialization, record store).

/// Error from [`read_u64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// Input ended inside a varint.
    Truncated,
    /// More than 10 continuation bytes (would overflow u64).
    Overflow,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "truncated varint"),
            VarintError::Overflow => write!(f, "varint overflows u64"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Append `value` to `out` as a varint.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a usize as a varint.
pub fn write_usize(out: &mut Vec<u8>, value: usize) {
    write_u64(out, value as u64);
}

/// Read a varint from `input` starting at `*pos`, advancing `*pos`.
pub fn read_u64(input: &[u8], pos: &mut usize) -> Result<u64, VarintError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos).ok_or(VarintError::Truncated)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && (byte & 0x7e) != 0) {
            return Err(VarintError::Overflow);
        }
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Read a varint as usize.
pub fn read_usize(input: &[u8], pos: &mut usize) -> Result<usize, VarintError> {
    read_u64(input, pos).map(|v| v as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 129, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn known_encodings() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        assert_eq!(buf, vec![0xac, 0x02]);
    }

    #[test]
    fn sequential_reads() {
        let mut buf = Vec::new();
        for v in [5u64, 1000, 0, 77] {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), 5);
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), 1000);
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), 0);
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), 77);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_input() {
        let mut pos = 0;
        assert_eq!(read_u64(&[0x80], &mut pos), Err(VarintError::Truncated));
        let mut pos = 0;
        assert_eq!(read_u64(&[], &mut pos), Err(VarintError::Truncated));
    }

    #[test]
    fn overflow_detected() {
        // 11 continuation bytes.
        let buf = [0xff; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Err(VarintError::Overflow));
    }

    #[test]
    fn max_u64_roundtrip_is_10_bytes() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }
}
