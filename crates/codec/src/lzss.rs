//! LZSS dictionary compression with a 4 KiB sliding window.
//!
//! This is the workhorse compressor for mobile-agent code: XML-ish and
//! bytecode payloads in the paper's 1–8 KB range are highly repetitive, and a
//! small-window LZSS captures most of that redundancy while the decoder stays
//! tiny — in the spirit of the paper's "simple text compression algorithms
//! \[requiring\] only \[a\] small amount of CPU time" on the handheld.
//!
//! Bit-stream format (MSB-first, see [`crate::bitio`]):
//! * flag bit `1` → literal: 8 bits of raw byte;
//! * flag bit `0` → match: 12-bit distance (1-based, 1..=4096) followed by a
//!   4-bit length field encoding lengths `MIN_MATCH..=MIN_MATCH+15`.
//!
//! The uncompressed length is carried by the [`crate::compress`] container,
//! so the decoder knows exactly when to stop and trailing pad bits are
//! harmless.

use crate::bitio::{BitReader, BitWriter};

/// Window size (must match the 12-bit distance field).
pub const WINDOW: usize = 4096;
/// Shortest match worth encoding (a match costs 17 bits ≈ 2.1 bytes).
pub const MIN_MATCH: usize = 3;
/// Longest encodable match.
pub const MAX_MATCH: usize = MIN_MATCH + 15;

/// Error from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LzssError {
    /// Bit stream ended before producing the promised output length.
    Truncated,
    /// A match referred back past the start of the output.
    BadDistance {
        /// Output length at the time of the bad reference.
        at: usize,
        /// The offending distance.
        distance: usize,
    },
}

impl std::fmt::Display for LzssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzssError::Truncated => write!(f, "truncated LZSS stream"),
            LzssError::BadDistance { at, distance } => {
                write!(f, "LZSS match distance {distance} exceeds output length {at}")
            }
        }
    }
}

impl std::error::Error for LzssError {}

/// Compress `data`. Returns the raw LZSS bit stream (no header; pair it with
/// the original length, as [`crate::compress`] does).
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    // Hash chains over 3-byte prefixes for O(1) candidate lookup.
    const HASH_SIZE: usize = 1 << 13;
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; data.len()];

    #[inline]
    fn hash3(data: &[u8], i: usize) -> usize {
        let h = (data[i] as usize) << 10 ^ (data[i + 1] as usize) << 5 ^ data[i + 2] as usize;
        h & ((1 << 13) - 1)
    }

    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut chain_budget = 64; // bounded search keeps encoding O(n)
            while cand != usize::MAX && chain_budget > 0 {
                if i - cand > WINDOW {
                    break;
                }
                let limit = (data.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == limit {
                        break;
                    }
                }
                cand = prev[cand];
                chain_budget -= 1;
            }
        }
        if best_len >= MIN_MATCH {
            w.write_bit(false);
            w.write_bits((best_dist - 1) as u32, 12);
            w.write_bits((best_len - MIN_MATCH) as u32, 4);
            // Insert all covered positions into the hash chains.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    let h = hash3(data, i);
                    prev[i] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            w.write_bit(true);
            w.write_bits(data[i] as u32, 8);
            if i + MIN_MATCH <= data.len() {
                let h = hash3(data, i);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    w.finish()
}

/// Decompress an LZSS stream into exactly `original_len` bytes.
pub fn decode(data: &[u8], original_len: usize) -> Result<Vec<u8>, LzssError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::with_capacity(original_len);
    while out.len() < original_len {
        let is_literal = r.read_bit().map_err(|_| LzssError::Truncated)?;
        if is_literal {
            let byte = r.read_bits(8).map_err(|_| LzssError::Truncated)? as u8;
            out.push(byte);
        } else {
            let dist = r.read_bits(12).map_err(|_| LzssError::Truncated)? as usize + 1;
            let len = r.read_bits(4).map_err(|_| LzssError::Truncated)? as usize + MIN_MATCH;
            if dist > out.len() {
                return Err(LzssError::BadDistance { at: out.len(), distance: dist });
            }
            let start = out.len() - dist;
            for k in 0..len {
                if out.len() == original_len {
                    break;
                }
                let byte = out[start + k];
                out.push(byte);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let enc = encode(data);
        let dec = decode(&enc, data.len()).unwrap();
        assert_eq!(dec, data, "roundtrip mismatch for {} bytes", data.len());
        enc
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_text_compresses() {
        let data = b"the quick brown fox; the quick brown fox; the quick brown fox".repeat(8);
        let enc = roundtrip(&data);
        assert!(
            enc.len() < data.len() / 2,
            "expected >2x compression, got {} -> {}",
            data.len(),
            enc.len()
        );
    }

    #[test]
    fn xml_like_payload_compresses() {
        let data = r#"<pi><param name="from">acct-001</param><param name="to">acct-002</param><param name="amount">120.00</param></pi>"#.repeat(10);
        let enc = roundtrip(data.as_bytes());
        assert!(enc.len() < data.len() / 2);
    }

    #[test]
    fn incompressible_data_expands_modestly() {
        // Pseudo-random bytes: each literal costs 9 bits, so expansion ≤ 12.5% + 1.
        let mut data = Vec::with_capacity(2048);
        let mut x: u32 = 0x1234_5678;
        for _ in 0..2048 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            data.push((x >> 24) as u8);
        }
        let enc = roundtrip(&data);
        assert!(enc.len() <= data.len() * 9 / 8 + 2);
    }

    #[test]
    fn overlapping_match_lacunae() {
        // "aaaa..." forces overlapping copies (dist 1, len > dist).
        let data = vec![b'a'; 1000];
        // Each match covers at most MAX_MATCH=18 bytes at 17 bits, so ~120 bytes.
        let enc = roundtrip(&data);
        assert!(enc.len() < 140);
    }

    #[test]
    fn long_input_beyond_window() {
        let mut data = Vec::new();
        for i in 0..30_000u32 {
            data.extend_from_slice(format!("line-{} ", i % 97).as_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_errors() {
        let enc = encode(b"hello world, hello world, hello world");
        let cut = &enc[..enc.len() / 2];
        assert!(matches!(decode(cut, 38), Err(LzssError::Truncated)));
    }

    #[test]
    fn bad_distance_errors() {
        // Hand-craft: one match token with dist 5 at output position 0.
        let mut w = BitWriter::new();
        w.write_bit(false);
        w.write_bits(4, 12); // dist 5
        w.write_bits(0, 4); // len MIN_MATCH
        let bytes = w.finish();
        assert!(matches!(
            decode(&bytes, 3),
            Err(LzssError::BadDistance { at: 0, distance: 5 })
        ));
    }

    #[test]
    fn decode_stops_exactly_at_original_len() {
        let data = b"abcabcabcabcabcabc";
        let enc = encode(data);
        let dec = decode(&enc, data.len()).unwrap();
        assert_eq!(dec.len(), data.len());
    }
}
