//! Canonical static Huffman coding.
//!
//! A two-pass coder: count byte frequencies, build a length-limited (15-bit)
//! Huffman code, emit the 256 code lengths as a compact header, then the
//! coded payload. Canonical codes mean the header only needs the *lengths* —
//! the codes themselves are reconstructed deterministically on both sides.

use crate::bitio::{BitReader, BitWriter};

/// Maximum code length. 15 bits is plenty for 256 symbols and keeps the
/// decoder tables small.
pub const MAX_CODE_LEN: u8 = 15;

/// Error from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HuffmanError {
    /// Stream ended mid-symbol or mid-header.
    Truncated,
    /// The header's code lengths do not describe a valid prefix code.
    InvalidTable,
}

impl std::fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HuffmanError::Truncated => write!(f, "truncated Huffman stream"),
            HuffmanError::InvalidTable => write!(f, "invalid Huffman code table"),
        }
    }
}

impl std::error::Error for HuffmanError {}

/// Compute code lengths for the byte frequencies using package-merge-free
/// heap construction, then flatten depths. Zero-frequency symbols get length
/// 0 (absent).
fn code_lengths(freqs: &[u64; 256]) -> [u8; 256] {
    // Build the Huffman tree with a simple two-queue/heap method.
    #[derive(Debug)]
    struct NodeArena {
        // (weight, left, right); leaves have left == right == usize::MAX and
        // carry their symbol in `symbol`.
        weight: Vec<u64>,
        left: Vec<usize>,
        right: Vec<usize>,
        symbol: Vec<usize>,
    }
    let mut arena =
        NodeArena { weight: vec![], left: vec![], right: vec![], symbol: vec![] };
    let mut heap = std::collections::BinaryHeap::new();
    for (sym, &f) in freqs.iter().enumerate() {
        if f > 0 {
            let id = arena.weight.len();
            arena.weight.push(f);
            arena.left.push(usize::MAX);
            arena.right.push(usize::MAX);
            arena.symbol.push(sym);
            heap.push(std::cmp::Reverse((f, id)));
        }
    }
    let mut lengths = [0u8; 256];
    match heap.len() {
        0 => return lengths,
        1 => {
            // A single distinct symbol still needs a 1-bit code.
            let std::cmp::Reverse((_, id)) = heap.pop().unwrap();
            lengths[arena.symbol[id]] = 1;
            return lengths;
        }
        _ => {}
    }
    while heap.len() > 1 {
        let std::cmp::Reverse((w1, n1)) = heap.pop().unwrap();
        let std::cmp::Reverse((w2, n2)) = heap.pop().unwrap();
        let id = arena.weight.len();
        arena.weight.push(w1 + w2);
        arena.left.push(n1);
        arena.right.push(n2);
        arena.symbol.push(usize::MAX);
        heap.push(std::cmp::Reverse((w1 + w2, id)));
    }
    let root = heap.pop().unwrap().0 .1;
    // Walk the tree assigning depths.
    let mut stack = vec![(root, 0u8)];
    let mut max_depth = 0u8;
    while let Some((node, depth)) = stack.pop() {
        if arena.left[node] == usize::MAX {
            lengths[arena.symbol[node]] = depth.max(1);
            max_depth = max_depth.max(depth);
        } else {
            stack.push((arena.left[node], depth + 1));
            stack.push((arena.right[node], depth + 1));
        }
    }
    if max_depth > MAX_CODE_LEN {
        // Length-limit by clamping and re-normalizing with the Kraft sum.
        limit_lengths(&mut lengths);
    }
    lengths
}

/// Clamp code lengths to [`MAX_CODE_LEN`] and repair the Kraft inequality by
/// deepening the shallowest over-budget codes.
fn limit_lengths(lengths: &mut [u8; 256]) {
    for l in lengths.iter_mut() {
        if *l > MAX_CODE_LEN {
            *l = MAX_CODE_LEN;
        }
    }
    // Kraft sum in units of 2^-MAX_CODE_LEN.
    let unit = 1u64 << MAX_CODE_LEN;
    let mut kraft: u64 =
        lengths.iter().filter(|&&l| l > 0).map(|&l| unit >> l).sum();
    // While over budget, lengthen the deepest-but-shortenable code.
    while kraft > unit {
        // Find a symbol with the smallest length > 0 that can grow.
        let (idx, _) = lengths
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0 && l < MAX_CODE_LEN)
            .min_by_key(|(_, &l)| l)
            .expect("kraft repair impossible");
        kraft -= unit >> lengths[idx];
        lengths[idx] += 1;
        kraft += unit >> lengths[idx];
    }
}

/// Assign canonical codes given lengths. Returns (code, len) per symbol.
fn canonical_codes(lengths: &[u8; 256]) -> Result<[(u32, u8); 256], HuffmanError> {
    let mut codes = [(0u32, 0u8); 256];
    // Count codes per length.
    let mut bl_count = [0u32; MAX_CODE_LEN as usize + 1];
    for &l in lengths.iter() {
        if l as usize > MAX_CODE_LEN as usize {
            return Err(HuffmanError::InvalidTable);
        }
        bl_count[l as usize] += 1;
    }
    bl_count[0] = 0;
    // Kraft check: the code must be exactly full or under-full (under-full is
    // tolerated for the degenerate 1-symbol case).
    let unit = 1u64 << MAX_CODE_LEN;
    let kraft: u64 = lengths.iter().filter(|&&l| l > 0).map(|&l| unit >> l).sum();
    if kraft > unit {
        return Err(HuffmanError::InvalidTable);
    }
    let mut next_code = [0u32; MAX_CODE_LEN as usize + 2];
    let mut code = 0u32;
    for bits in 1..=MAX_CODE_LEN as usize {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    for (sym, &len) in lengths.iter().enumerate() {
        if len > 0 {
            codes[sym] = (next_code[len as usize], len);
            next_code[len as usize] += 1;
        }
    }
    Ok(codes)
}

/// Encode `data`. Output = header (256 nibble-packed code lengths = 128
/// bytes... compacted with RLE-of-nibbles) + bit payload. Empty input yields
/// an empty vector.
pub fn encode(data: &[u8]) -> Vec<u8> {
    if data.is_empty() {
        return Vec::new();
    }
    let mut freqs = [0u64; 256];
    for &b in data {
        freqs[b as usize] += 1;
    }
    let lengths = code_lengths(&freqs);
    let codes = canonical_codes(&lengths).expect("own table is valid");

    let mut w = BitWriter::new();
    // Header: 256 x 4-bit code lengths.
    for &l in lengths.iter() {
        w.write_bits(l as u32, 4);
    }
    for &b in data {
        let (code, len) = codes[b as usize];
        w.write_bits(code, len);
    }
    w.finish()
}

/// Decode exactly `original_len` bytes from a stream produced by [`encode`].
pub fn decode(data: &[u8], original_len: usize) -> Result<Vec<u8>, HuffmanError> {
    if original_len == 0 {
        return Ok(Vec::new());
    }
    let mut r = BitReader::new(data);
    let mut lengths = [0u8; 256];
    for l in lengths.iter_mut() {
        *l = r.read_bits(4).map_err(|_| HuffmanError::Truncated)? as u8;
    }
    let codes = canonical_codes(&lengths)?;
    // Build a simple decode map: (len, code) -> symbol.
    let mut table = std::collections::HashMap::new();
    let mut any = false;
    for (sym, &(code, len)) in codes.iter().enumerate() {
        if len > 0 {
            table.insert((len, code), sym as u8);
            any = true;
        }
    }
    if !any {
        return Err(HuffmanError::InvalidTable);
    }
    let mut out = Vec::with_capacity(original_len);
    while out.len() < original_len {
        let mut code = 0u32;
        let mut len = 0u8;
        loop {
            code = (code << 1) | r.read_bit().map_err(|_| HuffmanError::Truncated)? as u32;
            len += 1;
            if len > MAX_CODE_LEN {
                return Err(HuffmanError::InvalidTable);
            }
            if let Some(&sym) = table.get(&(len, code)) {
                out.push(sym);
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let enc = encode(data);
        let dec = decode(&enc, data.len()).unwrap();
        assert_eq!(dec, data);
        enc
    }

    #[test]
    fn empty() {
        assert!(encode(b"").is_empty());
        assert_eq!(decode(b"", 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn single_symbol() {
        let data = vec![b'x'; 500];
        let enc = roundtrip(&data);
        // Header is 128 bytes; payload ~500 bits = 63 bytes.
        assert!(enc.len() < 200);
    }

    #[test]
    fn two_symbols() {
        let data: Vec<u8> =
            std::iter::repeat_n([b'a', b'b'], 100).flatten().collect();
        roundtrip(&data);
    }

    #[test]
    fn english_text_compresses() {
        let data = b"it is a truth universally acknowledged, that a single man in \
                     possession of a good fortune, must be in want of a wife."
            .repeat(20);
        let enc = roundtrip(&data);
        assert!(enc.len() < data.len() * 6 / 10, "{} -> {}", data.len(), enc.len());
    }

    #[test]
    fn all_byte_values_roundtrip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(3000).collect();
        roundtrip(&data);
    }

    #[test]
    fn skewed_distribution() {
        let mut data = vec![0u8; 10_000];
        for (i, b) in data.iter_mut().enumerate() {
            if i % 100 == 0 {
                *b = (i / 100) as u8;
            }
        }
        let enc = roundtrip(&data);
        assert!(enc.len() < data.len() / 4);
    }

    #[test]
    fn truncated_header_errors() {
        assert_eq!(decode(&[0u8; 10], 5).unwrap_err(), HuffmanError::Truncated);
    }

    #[test]
    fn truncated_payload_errors() {
        let data = b"hello hello hello hello";
        let enc = encode(data);
        let cut = &enc[..129]; // header survives, payload cut
        assert!(decode(cut, data.len()).is_err());
    }

    #[test]
    fn all_zero_table_is_invalid() {
        // 128 zero bytes: a complete header with no symbols.
        let enc = vec![0u8; 128];
        assert_eq!(decode(&enc, 1).unwrap_err(), HuffmanError::InvalidTable);
    }

    #[test]
    fn oversubscribed_table_is_invalid() {
        // All 256 symbols with length 1 grossly violates Kraft.
        let mut w = BitWriter::new();
        for _ in 0..256 {
            w.write_bits(1, 4);
        }
        let enc = w.finish();
        assert_eq!(decode(&enc, 1).unwrap_err(), HuffmanError::InvalidTable);
    }

    #[test]
    fn deep_tree_is_length_limited() {
        // Fibonacci-ish frequencies force deep trees; lengths must stay <= 15.
        let mut freqs = [0u64; 256];
        let mut a = 1u64;
        let mut b = 1u64;
        for f in freqs.iter_mut().take(40) {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = code_lengths(&freqs);
        assert!(lengths.iter().all(|&l| l <= MAX_CODE_LEN));
        // And they must form a decodable code.
        canonical_codes(&lengths).unwrap();
    }
}
