//! The self-describing `PDAZ` compression container.
//!
//! Layout: 4-byte magic `PDAZ`, 1 algorithm byte, varint original length,
//! then the algorithm-specific payload. A receiver (the gateway, or the
//! device unpacking a downloaded agent) needs no out-of-band information.
//!
//! [`Algorithm::Auto`] tries every real algorithm and keeps the smallest
//! output, falling back to [`Algorithm::Store`] when compression does not
//! pay — so `compress` never expands data by more than the 6–15 byte header.

use crate::{huffman, lzss, rle, varint};

/// Magic prefix of the container.
pub const MAGIC: &[u8; 4] = b"PDAZ";

/// Compression algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// No compression (payload stored verbatim).
    Store,
    /// Run-length encoding.
    Rle,
    /// LZSS with a 4 KiB window.
    Lzss,
    /// Canonical static Huffman.
    Huffman,
    /// LZSS followed by Huffman on the LZSS bit stream.
    LzssHuffman,
    /// Pick whichever of the above yields the smallest output.
    Auto,
}

impl Algorithm {
    fn to_byte(self) -> u8 {
        match self {
            Algorithm::Store => 0,
            Algorithm::Rle => 1,
            Algorithm::Lzss => 2,
            Algorithm::Huffman => 3,
            Algorithm::LzssHuffman => 4,
            Algorithm::Auto => panic!("Auto is resolved before encoding"),
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(Algorithm::Store),
            1 => Some(Algorithm::Rle),
            2 => Some(Algorithm::Lzss),
            3 => Some(Algorithm::Huffman),
            4 => Some(Algorithm::LzssHuffman),
            _ => None,
        }
    }

    /// Human-readable name (used by the footprint experiment's report).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Store => "store",
            Algorithm::Rle => "rle",
            Algorithm::Lzss => "lzss",
            Algorithm::Huffman => "huffman",
            Algorithm::LzssHuffman => "lzss+huffman",
            Algorithm::Auto => "auto",
        }
    }
}

/// Decoding error for the container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input does not start with the `PDAZ` magic.
    BadMagic,
    /// Unknown algorithm byte.
    UnknownAlgorithm(u8),
    /// Header truncated.
    Truncated,
    /// The payload failed to decode.
    Payload(String),
    /// Decoded output length did not match the header.
    LengthMismatch {
        /// Length promised by the header.
        expected: usize,
        /// Length actually produced.
        actual: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "missing PDAZ magic"),
            CodecError::UnknownAlgorithm(b) => write!(f, "unknown algorithm byte {b}"),
            CodecError::Truncated => write!(f, "truncated PDAZ container"),
            CodecError::Payload(msg) => write!(f, "payload decode failed: {msg}"),
            CodecError::LengthMismatch { expected, actual } => {
                write!(f, "decoded {actual} bytes, header promised {expected}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

fn encode_with(data: &[u8], alg: Algorithm) -> Vec<u8> {
    match alg {
        Algorithm::Store => data.to_vec(),
        Algorithm::Rle => rle::encode(data),
        Algorithm::Lzss => lzss::encode(data),
        Algorithm::Huffman => huffman::encode(data),
        Algorithm::LzssHuffman => huffman::encode(&lzss::encode(data)),
        Algorithm::Auto => unreachable!(),
    }
}

/// Compress `data` into a `PDAZ` container.
pub fn compress(data: &[u8], alg: Algorithm) -> Vec<u8> {
    let (alg, payload) = match alg {
        Algorithm::Auto => {
            let mut best = (Algorithm::Store, data.to_vec());
            for cand in [Algorithm::Rle, Algorithm::Lzss, Algorithm::Huffman, Algorithm::LzssHuffman]
            {
                let enc = encode_with(data, cand);
                if enc.len() < best.1.len() {
                    best = (cand, enc);
                }
            }
            best
        }
        other => {
            let enc = encode_with(data, other);
            // Never ship an expanded payload: fall back to Store.
            if enc.len() >= data.len() && other != Algorithm::Store {
                (Algorithm::Store, data.to_vec())
            } else {
                (other, enc)
            }
        }
    };
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(MAGIC);
    out.push(alg.to_byte());
    varint::write_usize(&mut out, data.len());
    // For LzssHuffman the Huffman layer needs the intermediate length too.
    if alg == Algorithm::LzssHuffman {
        let mid = lzss::encode(data);
        varint::write_usize(&mut out, mid.len());
    }
    out.extend_from_slice(&payload);
    out
}

/// Which algorithm a container was encoded with (without decompressing).
pub fn sniff_algorithm(data: &[u8]) -> Result<Algorithm, CodecError> {
    if data.len() < 5 || &data[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    Algorithm::from_byte(data[4]).ok_or(CodecError::UnknownAlgorithm(data[4]))
}

/// Decompress a `PDAZ` container.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    let alg = sniff_algorithm(data)?;
    let mut pos = 5;
    let original_len =
        varint::read_usize(data, &mut pos).map_err(|_| CodecError::Truncated)?;
    let out = match alg {
        Algorithm::Store => {
            data.get(pos..).map(<[u8]>::to_vec).ok_or(CodecError::Truncated)?
        }
        Algorithm::Rle => rle::decode(data.get(pos..).ok_or(CodecError::Truncated)?)
            .map_err(|e| CodecError::Payload(e.to_string()))?,
        Algorithm::Lzss => {
            lzss::decode(data.get(pos..).ok_or(CodecError::Truncated)?, original_len)
                .map_err(|e| CodecError::Payload(e.to_string()))?
        }
        Algorithm::Huffman => {
            huffman::decode(data.get(pos..).ok_or(CodecError::Truncated)?, original_len)
                .map_err(|e| CodecError::Payload(e.to_string()))?
        }
        Algorithm::LzssHuffman => {
            let mid_len =
                varint::read_usize(data, &mut pos).map_err(|_| CodecError::Truncated)?;
            let mid =
                huffman::decode(data.get(pos..).ok_or(CodecError::Truncated)?, mid_len)
                    .map_err(|e| CodecError::Payload(e.to_string()))?;
            lzss::decode(&mid, original_len)
                .map_err(|e| CodecError::Payload(e.to_string()))?
        }
        Algorithm::Auto => unreachable!(),
    };
    if out.len() != original_len {
        return Err(CodecError::LengthMismatch { expected: original_len, actual: out.len() });
    }
    Ok(out)
}

/// Compression ratio achieved by a container (original / packed), for
/// reporting. Returns `None` on a malformed container.
pub fn ratio(container: &[u8]) -> Option<f64> {
    let mut pos = 5;
    if container.len() < 5 || &container[..4] != MAGIC {
        return None;
    }
    let original = varint::read_usize(container, &mut pos).ok()?;
    if container.is_empty() {
        return None;
    }
    Some(original as f64 / container.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &[u8] = b"<agent><op>transfer</op><op>transfer</op><op>balance</op>\
        <from>acct-0001</from><to>acct-0002</to><amount>125.50</amount></agent>";

    #[test]
    fn every_algorithm_roundtrips() {
        for alg in [
            Algorithm::Store,
            Algorithm::Rle,
            Algorithm::Lzss,
            Algorithm::Huffman,
            Algorithm::LzssHuffman,
            Algorithm::Auto,
        ] {
            let packed = compress(SAMPLE, alg);
            assert_eq!(decompress(&packed).unwrap(), SAMPLE, "alg {alg:?}");
        }
    }

    #[test]
    fn empty_input() {
        for alg in [Algorithm::Store, Algorithm::Lzss, Algorithm::Auto] {
            let packed = compress(b"", alg);
            assert_eq!(decompress(&packed).unwrap(), Vec::<u8>::new());
        }
    }

    #[test]
    fn auto_never_loses_to_store_by_much() {
        let mut random = Vec::with_capacity(1000);
        let mut x: u32 = 42;
        for _ in 0..1000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            random.push((x >> 24) as u8);
        }
        let packed = compress(&random, Algorithm::Auto);
        assert!(packed.len() <= random.len() + 16);
        assert_eq!(decompress(&packed).unwrap(), random);
    }

    #[test]
    fn auto_compresses_agent_code_well() {
        let code = SAMPLE.repeat(20);
        let packed = compress(&code, Algorithm::Auto);
        assert!(packed.len() < code.len() / 3, "{} -> {}", code.len(), packed.len());
        assert!(ratio(&packed).unwrap() > 3.0);
    }

    #[test]
    fn sniff_reports_algorithm() {
        let packed = compress(SAMPLE, Algorithm::Lzss);
        assert_eq!(sniff_algorithm(&packed).unwrap(), Algorithm::Lzss);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decompress(b"NOPE\x00\x00"), Err(CodecError::BadMagic));
        assert_eq!(decompress(b""), Err(CodecError::BadMagic));
    }

    #[test]
    fn unknown_algorithm_rejected() {
        let mut packed = compress(SAMPLE, Algorithm::Store);
        packed[4] = 99;
        assert_eq!(decompress(&packed), Err(CodecError::UnknownAlgorithm(99)));
    }

    #[test]
    fn truncated_container_rejected() {
        let packed = compress(SAMPLE, Algorithm::Lzss);
        assert!(decompress(&packed[..5]).is_err());
        assert!(decompress(&packed[..packed.len() / 2]).is_err());
    }

    #[test]
    fn store_length_mismatch_detected() {
        let mut packed = compress(b"abcdef", Algorithm::Store);
        packed.truncate(packed.len() - 2);
        assert!(matches!(
            decompress(&packed),
            Err(CodecError::LengthMismatch { expected: 6, actual: 4 })
        ));
    }

    #[test]
    fn forced_expansion_falls_back_to_store() {
        // RLE on non-repetitive data would expand; compress() must fall back.
        let data = b"abcdefghijklmnopqrstuvwxyz";
        let packed = compress(data, Algorithm::Rle);
        assert_eq!(sniff_algorithm(&packed).unwrap(), Algorithm::Store);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn large_payload_roundtrip() {
        let data = SAMPLE.repeat(500); // ~70 KB
        for alg in [Algorithm::Lzss, Algorithm::LzssHuffman, Algorithm::Auto] {
            let packed = compress(&data, alg);
            assert_eq!(decompress(&packed).unwrap(), data);
        }
    }
}
