//! Lowercase hex encoding for digests and identifiers.

/// Error from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexError {
    /// A non-hex character at this position.
    InvalidChar(usize),
    /// Odd number of hex digits.
    OddLength(usize),
}

impl std::fmt::Display for HexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HexError::InvalidChar(p) => write!(f, "invalid hex character at {p}"),
            HexError::OddLength(l) => write!(f, "odd hex string length {l}"),
        }
    }
}

impl std::error::Error for HexError {}

/// Encode bytes as lowercase hex.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    out
}

/// Decode a hex string (either case).
pub fn decode(input: &str) -> Result<Vec<u8>, HexError> {
    let bytes = input.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(HexError::OddLength(bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hi = (pair[0] as char).to_digit(16).ok_or(HexError::InvalidChar(i * 2))?;
        let lo = (pair[1] as char).to_digit(16).ok_or(HexError::InvalidChar(i * 2 + 1))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn known_values() {
        assert_eq!(encode(b"\x00\xff\x10"), "00ff10");
        assert_eq!(decode("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn errors() {
        assert_eq!(decode("abc").unwrap_err(), HexError::OddLength(3));
        assert_eq!(decode("zz").unwrap_err(), HexError::InvalidChar(0));
        assert_eq!(decode("aaxz").unwrap_err(), HexError::InvalidChar(2));
    }
}
