//! RFC 4648 base64 (standard alphabet, `=` padding).
//!
//! Used to embed agent bytecode and ciphertext inside the XML Packed
//! Information documents.

/// Encoding/decoding error for [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base64Error {
    /// A byte outside the base64 alphabet at this position.
    InvalidByte(usize),
    /// Input length is not a multiple of 4.
    InvalidLength(usize),
    /// `=` padding appeared somewhere other than the end.
    InvalidPadding,
}

impl std::fmt::Display for Base64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base64Error::InvalidByte(pos) => write!(f, "invalid base64 byte at {pos}"),
            Base64Error::InvalidLength(len) => {
                write!(f, "base64 length {len} is not a multiple of 4")
            }
            Base64Error::InvalidPadding => write!(f, "misplaced base64 padding"),
        }
    }
}

impl std::error::Error for Base64Error {}

const ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes to a base64 string.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        if chunk.len() > 1 {
            out.push(ALPHABET[(triple >> 6) as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(ALPHABET[triple as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
    }
    out
}

fn decode_sym(b: u8, pos: usize) -> Result<u32, Base64Error> {
    match b {
        b'A'..=b'Z' => Ok((b - b'A') as u32),
        b'a'..=b'z' => Ok((b - b'a') as u32 + 26),
        b'0'..=b'9' => Ok((b - b'0') as u32 + 52),
        b'+' => Ok(62),
        b'/' => Ok(63),
        _ => Err(Base64Error::InvalidByte(pos)),
    }
}

/// Decode a base64 string (whitespace is ignored, as is common when the
/// payload has been pretty-printed inside an XML document).
pub fn decode(input: &str) -> Result<Vec<u8>, Base64Error> {
    let cleaned: Vec<u8> =
        input.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !cleaned.len().is_multiple_of(4) {
        return Err(Base64Error::InvalidLength(cleaned.len()));
    }
    let mut out = Vec::with_capacity(cleaned.len() / 4 * 3);
    for (ci, chunk) in cleaned.chunks(4).enumerate() {
        let is_last = (ci + 1) * 4 == cleaned.len();
        let pad = chunk.iter().rev().take_while(|&&b| b == b'=').count();
        if pad > 2 || (pad > 0 && !is_last) {
            return Err(Base64Error::InvalidPadding);
        }
        // '=' may only appear in the padding tail.
        if chunk[..4 - pad].contains(&b'=') {
            return Err(Base64Error::InvalidPadding);
        }
        let mut triple: u32 = 0;
        for (i, &b) in chunk.iter().enumerate() {
            let v = if b == b'=' { 0 } else { decode_sym(b, ci * 4 + i)? };
            triple = (triple << 6) | v;
        }
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        // The test vectors from RFC 4648 §10.
        let cases: &[(&str, &str)] = &[
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in cases {
            assert_eq!(encode(plain.as_bytes()), *enc);
            assert_eq!(decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn binary_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn whitespace_ignored() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar");
        assert_eq!(decode("  Zm9v  ").unwrap(), b"foo");
    }

    #[test]
    fn invalid_byte_reports_position() {
        assert_eq!(decode("Zm9!").unwrap_err(), Base64Error::InvalidByte(3));
    }

    #[test]
    fn invalid_length() {
        assert_eq!(decode("Zm9").unwrap_err(), Base64Error::InvalidLength(3));
    }

    #[test]
    fn misplaced_padding() {
        assert_eq!(decode("Zg==Zm9v").unwrap_err(), Base64Error::InvalidPadding);
        assert_eq!(decode("Z===").unwrap_err(), Base64Error::InvalidPadding);
        assert_eq!(decode("=m9v").unwrap_err(), Base64Error::InvalidPadding);
    }
}
