//! Byte-oriented run-length encoding.
//!
//! The simplest of the "simple text compression algorithms" the paper refers
//! to. Format: a stream of `(control, ...)` packets. A control byte `0..=127`
//! means "copy the next `control+1` literal bytes"; a control byte
//! `128..=255` means "repeat the next byte `control-126` times" (i.e. runs of
//! 2..=129).

/// Error from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RleError {
    /// Byte offset of the truncation.
    pub offset: usize,
}

impl std::fmt::Display for RleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "truncated RLE stream at byte {}", self.offset)
    }
}

impl std::error::Error for RleError {}

/// Run-length encode `data`.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut i = 0;
    let mut literal_start = 0;

    fn flush_literals(out: &mut Vec<u8>, data: &[u8], start: usize, end: usize) {
        let mut s = start;
        while s < end {
            let n = (end - s).min(128);
            out.push((n - 1) as u8);
            out.extend_from_slice(&data[s..s + n]);
            s += n;
        }
    }

    while i < data.len() {
        let run_byte = data[i];
        let mut run_len = 1;
        while i + run_len < data.len() && data[i + run_len] == run_byte && run_len < 129 {
            run_len += 1;
        }
        if run_len >= 3 {
            flush_literals(&mut out, data, literal_start, i);
            out.push((run_len + 126) as u8);
            out.push(run_byte);
            i += run_len;
            literal_start = i;
        } else {
            i += run_len;
        }
    }
    flush_literals(&mut out, data, literal_start, data.len());
    out
}

/// Decode an RLE stream produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<Vec<u8>, RleError> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0;
    while i < data.len() {
        let control = data[i];
        i += 1;
        if control < 128 {
            let n = control as usize + 1;
            let end = i + n;
            if end > data.len() {
                return Err(RleError { offset: i });
            }
            out.extend_from_slice(&data[i..end]);
            i = end;
        } else {
            let n = control as usize - 126;
            let byte = *data.get(i).ok_or(RleError { offset: i })?;
            i += 1;
            out.resize(out.len() + n, byte);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), Vec::<u8>::new());
        assert_eq!(decode(&[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn literals_only() {
        let data = b"abcdef";
        let enc = encode(data);
        assert_eq!(enc[0], 5); // 6 literals
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn long_run_compresses() {
        let data = vec![0x41u8; 100];
        let enc = encode(&data);
        assert_eq!(enc.len(), 2);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn run_longer_than_max_splits() {
        let data = vec![7u8; 500];
        let enc = encode(&data);
        assert!(enc.len() <= 10);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn mixed_content() {
        let mut data = Vec::new();
        data.extend_from_slice(b"header");
        data.extend(std::iter::repeat_n(b' ', 40));
        data.extend_from_slice(b"trailer");
        let enc = encode(&data);
        assert!(enc.len() < data.len());
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn short_runs_stay_literal() {
        // Runs of 2 are cheaper as literals.
        let data = b"aabbcc";
        let enc = encode(data);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn literal_block_longer_than_128_splits() {
        let data: Vec<u8> = (0..=255u8).chain(0..=255u8).collect();
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn truncated_literal_errors() {
        // Control says 4 literals but only 2 present.
        assert!(decode(&[3, b'a', b'b']).is_err());
    }

    #[test]
    fn truncated_run_errors() {
        assert!(decode(&[200]).is_err());
    }
}
